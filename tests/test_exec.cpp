// rpv::exec — thread pool, parallel campaign determinism, JSON round trips,
// and the run-artifact store.
#include <atomic>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "exec/campaign_engine.hpp"
#include "exec/run_artifact.hpp"
#include "exec/thread_pool.hpp"
#include "experiment/runner.hpp"
#include "json/json.hpp"
#include "pipeline/report_json.hpp"

namespace rpv {
namespace {

// --- ThreadPool / parallel_for_index ---

TEST(ThreadPool, RunsEverySubmittedTask) {
  exec::ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  exec::ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(exec::resolve_jobs(3), 3);
  EXPECT_GE(exec::resolve_jobs(0), 1);
  EXPECT_GE(exec::resolve_jobs(-1), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<int> hits(257, 0);
    exec::parallel_for_index(hits.size(), jobs,
                             [&](std::size_t i) { hits[i]++; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      exec::parallel_for_index(16, 4,
                               [](std::size_t i) {
                                 if (i == 7) throw std::runtime_error{"boom"};
                               }),
      std::runtime_error);
}

// --- JSON value model ---

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(json::parse("null").kind(), json::Value::Kind::kNull);
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_EQ(json::parse("-42").as_i64(), -42);
  EXPECT_EQ(json::parse("18446744073709551615").as_u64(),
            18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(json::parse("0.25").as_double(), 0.25);
  EXPECT_EQ(json::parse("\"a\\nb\"").as_string(), "a\nb");
}

TEST(Json, DoubleDumpIsShortestRoundTrip) {
  const double x = 0.1;
  const auto v = json::parse(json::Value{x}.dump());
  EXPECT_EQ(v.as_double(), x);
  EXPECT_EQ(json::Value{x}.dump(), "0.1");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  json::Value obj = json::Value::object();
  obj.set("zeta", 1).set("alpha", 2).set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite keeps the original slot.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, NestedDocumentRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":[{"d":-7}]},"e":""})";
  const auto v = json::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(v.at("b").at("c").items().at(0).at("d").as_i64(), -7);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("{} x"), std::runtime_error);
  EXPECT_FALSE(json::try_parse("nope").has_value());
  EXPECT_TRUE(json::try_parse("[]").has_value());
}

TEST(Json, MissingKeyNamesTheKey) {
  const auto v = json::parse("{\"a\":1}");
  try {
    (void)v.at("missing");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("missing"), std::string::npos);
  }
}

// --- Campaign determinism: parallel == serial, byte for byte ---

experiment::Campaign small_campaign() {
  experiment::Campaign c;
  c.scenario.env = experiment::Environment::kRuralP1;
  c.scenario.cc = pipeline::CcKind::kStatic;
  c.scenario.seed = 77;
  c.runs = 3;
  return c;
}

std::vector<std::string> report_bytes(
    const std::vector<pipeline::SessionReport>& rs) {
  std::vector<std::string> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(pipeline::report_to_json(r).dump());
  return out;
}

TEST(CampaignEngine, ParallelReportsAreByteIdenticalToSerial) {
  auto c = small_campaign();
  c.jobs = 1;
  const auto serial = report_bytes(experiment::run_campaign(c));
  ASSERT_EQ(serial.size(), 3u);
  for (const int jobs : {2, 8}) {
    c.jobs = jobs;
    const auto parallel = report_bytes(experiment::run_campaign(c));
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "jobs=" << jobs << " run=" << i;
    }
  }
}

TEST(CampaignEngine, EngineMatchesLegacySerialRunner) {
  const auto c = small_campaign();
  const exec::CampaignEngine engine{{.jobs = 4}};
  const auto result = engine.run(c);
  EXPECT_EQ(result.seeds, exec::campaign_seeds(c));
  ASSERT_EQ(result.seeds.size(), 3u);
  EXPECT_EQ(result.seeds[1], c.scenario.seed + 7919);
  auto serial = c;
  serial.jobs = 1;
  EXPECT_EQ(report_bytes(result.reports),
            report_bytes(experiment::run_campaign(serial)));
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(CampaignEngine, ValidatesCampaignAndGrid) {
  auto c = small_campaign();
  c.runs = 0;
  EXPECT_THROW((void)experiment::run_campaign(c), std::invalid_argument);
  c.runs = -3;
  const exec::CampaignEngine engine;
  EXPECT_THROW((void)engine.run(c), std::invalid_argument);
  EXPECT_THROW((void)engine.run_grid({}, 2, 1), std::invalid_argument);
  const auto cells = exec::expand_grid({}, experiment::Scenario{});
  EXPECT_THROW((void)engine.run_grid(cells, 0, 1), std::invalid_argument);
}

TEST(CampaignEngine, ExpandGridCrossProduct) {
  exec::GridAxes axes;
  axes.envs = {experiment::Environment::kUrban,
               experiment::Environment::kRuralP1};
  axes.ccs = {pipeline::CcKind::kGcc, pipeline::CcKind::kScream,
              pipeline::CcKind::kStatic};
  const auto cells = exec::expand_grid(axes);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].label, "urban-air-gcc");
  EXPECT_EQ(cells[0].scenario.env, experiment::Environment::kUrban);
  EXPECT_EQ(cells[5].label, "rural-p1-air-static");
  EXPECT_EQ(cells[5].scenario.cc, pipeline::CcKind::kStatic);
  // Empty axes collapse to the base scenario's value.
  experiment::Scenario base;
  base.mobility = experiment::Mobility::kGround;
  const auto single = exec::expand_grid({}, base);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].scenario.mobility, experiment::Mobility::kGround);
}

// --- SessionReport JSON round trip ---

pipeline::SessionReport faulted_report() {
  // A scenario that populates the optional report sections too: faults +
  // resilience (fault_outcomes, PLI/watchdog counters), probes
  // (rtt_by_altitude), and the C2 channel.
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 4051;
  s.c2 = true;
  s.probe_interval = sim::Duration::millis(500);
  s.resilience = true;
  s.model_reference_loss = true;
  s.faults.wan_outage(120.0, 2.0);
  s.faults.capacity_collapse(200.0, 1.0, 0.1);
  return experiment::run_scenario(s);
}

TEST(ReportJson, RoundTripIsByteStableAndLossless) {
  const auto r = faulted_report();
  const auto doc = pipeline::report_to_json(r);
  const std::string bytes = doc.dump();
  const auto back = pipeline::report_from_json(json::parse(bytes));
  // Byte-stable: serializing the loaded report reproduces the same bytes.
  EXPECT_EQ(pipeline::report_to_json(back).dump(), bytes);
  // Spot checks across field categories.
  EXPECT_EQ(back.cc_name, r.cc_name);
  EXPECT_EQ(back.environment, r.environment);
  EXPECT_EQ(back.duration.us(), r.duration.us());
  EXPECT_EQ(back.owd_ms, r.owd_ms);
  EXPECT_EQ(back.ssim_samples, r.ssim_samples);
  EXPECT_EQ(back.packets_sent, r.packets_sent);
  EXPECT_EQ(back.stall_count, r.stall_count);
  EXPECT_EQ(back.handovers.count(), r.handovers.count());
  EXPECT_EQ(back.het_ms, r.het_ms);
  EXPECT_EQ(back.rtt_by_altitude, r.rtt_by_altitude);
  EXPECT_EQ(back.command_latency_ms, r.command_latency_ms);
  ASSERT_EQ(back.fault_outcomes.size(), r.fault_outcomes.size());
  ASSERT_GE(back.fault_outcomes.size(), 2u);
  for (std::size_t i = 0; i < r.fault_outcomes.size(); ++i) {
    EXPECT_EQ(back.fault_outcomes[i].event.kind, r.fault_outcomes[i].event.kind);
    EXPECT_EQ(back.fault_outcomes[i].recovery_ms,
              r.fault_outcomes[i].recovery_ms);
  }
  ASSERT_EQ(back.owd_trace_ms.count(), r.owd_trace_ms.count());
  if (!r.owd_trace_ms.empty()) {
    EXPECT_EQ(back.owd_trace_ms.samples().back().t.us(),
              r.owd_trace_ms.samples().back().t.us());
    EXPECT_EQ(back.owd_trace_ms.samples().back().value,
              r.owd_trace_ms.samples().back().value);
  }
}

TEST(ReportJson, RejectsWrongSchema) {
  auto doc = pipeline::report_to_json(pipeline::SessionReport{});
  doc.set("schema", std::int64_t{999});
  EXPECT_THROW((void)pipeline::report_from_json(doc), std::runtime_error);
  EXPECT_THROW((void)pipeline::report_from_json(json::parse("{}")),
               std::runtime_error);
}

// --- Artifact store ---

class RunArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path{::testing::TempDir()} /
           ("rpv_exec_store_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(RunArtifactTest, WriteThenLoadRoundTripsCampaign) {
  exec::GridAxes axes;
  axes.envs = {experiment::Environment::kRuralP1};
  axes.mobilities = {experiment::Mobility::kAir,
                     experiment::Mobility::kGround};
  experiment::Scenario base;
  base.cc = pipeline::CcKind::kNone;
  base.probe_interval = sim::Duration::millis(200);
  const auto cells = exec::expand_grid(axes, base);
  ASSERT_EQ(cells.size(), 2u);

  const exec::CampaignEngine engine{{.jobs = 2}};
  const auto result = engine.run_grid(cells, /*runs=*/2, /*base_seed=*/31);

  exec::CampaignManifest manifest;
  manifest.name = "probe-mini";
  manifest.git_describe = exec::current_git_describe();
  manifest.runs_per_cell = 2;
  manifest.jobs = result.jobs;
  manifest.wall_seconds = result.wall_seconds;
  const exec::RunArtifactStore store{dir_};
  const auto campaign_dir = store.write_campaign(manifest, result);

  // Manifest contents.
  EXPECT_TRUE(std::filesystem::exists(campaign_dir / "manifest.json"));
  const auto doc =
      json::parse(*json::read_file((campaign_dir / "manifest.json").string()));
  EXPECT_EQ(doc.at("schema").as_i64(), 1);
  EXPECT_EQ(doc.at("name").as_string(), "probe-mini");
  EXPECT_FALSE(doc.at("git").as_string().empty());
  EXPECT_EQ(doc.at("runs_per_cell").as_i64(), 2);
  EXPECT_EQ(doc.at("jobs").as_i64(), result.jobs);
  ASSERT_EQ(doc.at("cells").items().size(), 2u);
  const auto& cell0 = doc.at("cells").items()[0];
  EXPECT_EQ(cell0.at("label").as_string(), "rural-p1-air-probe");
  EXPECT_EQ(cell0.at("scenario").at("environment").as_string(), "rural-p1");
  EXPECT_EQ(cell0.at("scenario").at("probe_interval_us").as_i64(), 200000);
  ASSERT_EQ(cell0.at("runs").items().size(), 2u);
  EXPECT_EQ(cell0.at("runs").items()[0].at("seed").as_u64(), 31u);
  EXPECT_EQ(cell0.at("runs").items()[1].at("seed").as_u64(), 31u + 7919u);
  for (const auto& rj : cell0.at("runs").items()) {
    EXPECT_TRUE(std::filesystem::exists(campaign_dir /
                                        rj.at("file").as_string()));
  }

  // Loader: stored reports reproduce the in-memory ones byte for byte.
  const auto loaded = exec::RunArtifactStore::load_campaign(campaign_dir);
  ASSERT_EQ(loaded.cells.size(), result.cells.size());
  for (std::size_t c = 0; c < loaded.cells.size(); ++c) {
    EXPECT_EQ(loaded.cells[c].cell.label, result.cells[c].cell.label);
    EXPECT_EQ(loaded.cells[c].seeds, result.cells[c].seeds);
    ASSERT_EQ(loaded.cells[c].reports.size(), result.cells[c].reports.size());
    for (std::size_t i = 0; i < loaded.cells[c].reports.size(); ++i) {
      EXPECT_EQ(pipeline::report_to_json(loaded.cells[c].reports[i]).dump(),
                pipeline::report_to_json(result.cells[c].reports[i]).dump());
    }
  }
}

TEST_F(RunArtifactTest, RejectsBadCampaignNames) {
  const exec::RunArtifactStore store{dir_};
  exec::CampaignManifest manifest;
  manifest.name = "../escape";
  EXPECT_THROW((void)store.write_campaign(manifest, {}),
               std::invalid_argument);
  manifest.name = "";
  EXPECT_THROW((void)store.write_campaign(manifest, {}),
               std::invalid_argument);
}

TEST_F(RunArtifactTest, LoadFromMissingDirectoryThrows) {
  EXPECT_THROW((void)exec::RunArtifactStore::load_campaign(dir_ / "nope"),
               std::runtime_error);
}

// --- Bench CLI option parsing (bench_common.hpp) ---

TEST(BenchOptions, ParsesValidFlags) {
  const auto opts =
      bench::parse_options({"--runs", "4", "--seed", "99", "--jobs", "2"});
  ASSERT_TRUE(opts.runs.has_value());
  EXPECT_EQ(*opts.runs, 4);
  ASSERT_TRUE(opts.seed.has_value());
  EXPECT_EQ(*opts.seed, 99u);
  EXPECT_EQ(opts.jobs, 2);
  // Defaults survive when nothing is passed.
  const auto empty = bench::parse_options({});
  EXPECT_FALSE(empty.runs.has_value());
  EXPECT_FALSE(empty.seed.has_value());
  EXPECT_EQ(empty.jobs, 0);
}

TEST(BenchOptions, RejectsNegativeCountsAndSeeds) {
  EXPECT_THROW((void)bench::parse_options({"--runs", "-3"}),
               std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--runs", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--seed", "-5"}),
               std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--jobs", "-1"}),
               std::invalid_argument);
  // --jobs 0 means "one worker per hardware thread" and stays legal.
  EXPECT_EQ(bench::parse_options({"--jobs", "0"}).jobs, 0);
}

TEST(BenchOptions, RejectsMalformedAndUnknownArguments) {
  EXPECT_THROW((void)bench::parse_options({"--runs"}), std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--runs", "five"}),
               std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--runs", "3x"}),
               std::invalid_argument);
  EXPECT_THROW((void)bench::parse_options({"--bogus"}), std::invalid_argument);
}

}  // namespace
}  // namespace rpv
