// libFuzzer driver for the events.jsonl loader (rpv::obs::read_jsonl).
// Build with -DRPV_FUZZ=ON (clang).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  rpv::fuzz::one_events(
      std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
