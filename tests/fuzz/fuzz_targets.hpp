// Shared one-input bodies for the libFuzzer drivers in this directory and
// for the corpus-replay test (tests/test_fuzz_corpus.cpp) that keeps the
// seed corpus green under the default gcc build, where libFuzzer is not
// available.
//
// Contract for every target: arbitrary bytes either parse cleanly or throw
// std::exception — any other escape (crash, sanitizer report, non-canonical
// round trip) is a bug. A successful parse must additionally reach its
// canonical fixpoint in one dump: dump -> parse -> dump is byte-stable, the
// same invariant the campaign artifacts and the j1-vs-j8 CI smokes rely on.
#pragma once

#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "obs/recorder.hpp"
#include "radiomap/radio_map.hpp"

namespace rpv::fuzz {

// json::parse over raw bytes.
inline void one_json(std::string_view text) {
  json::Value v;
  try {
    v = json::parse(text);
  } catch (const std::exception&) {
    return;  // malformed input must reject via exception, never crash
  }
  const std::string bytes = v.dump();
  if (json::parse(bytes).dump() != bytes) std::abort();
  // The pretty form must re-parse to the same canonical bytes.
  if (json::parse(v.dump(2)).dump() != bytes) std::abort();
}

// events.jsonl timeline loader (obs::read_jsonl).
inline void one_events(std::string_view text) {
  std::vector<obs::Event> events;
  try {
    events = obs::read_jsonl(std::string(text));
  } catch (const std::exception&) {
    return;
  }
  const std::string bytes = obs::to_jsonl(events);
  if (obs::to_jsonl(obs::read_jsonl(bytes)) != bytes) std::abort();
}

// Radio-map artifact loader (radiomap::radio_map_from_bytes).
inline void one_radiomap(std::string_view text) {
  radiomap::RadioMap map;
  try {
    map = radiomap::radio_map_from_bytes(text);
  } catch (const std::exception&) {
    return;
  }
  const std::string bytes = map.canonical_bytes();
  if (radiomap::radio_map_from_bytes(bytes).canonical_bytes() != bytes) {
    std::abort();
  }
}

}  // namespace rpv::fuzz
