#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace rpv::sim {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::millis(1).us(), 1000);
  EXPECT_EQ(Duration::seconds(1.0).us(), 1'000'000);
  EXPECT_EQ(Duration::micros(42).us(), 42);
}

TEST(Duration, ConversionsRoundTrip) {
  const auto d = Duration::micros(1'500'000);
  EXPECT_DOUBLE_EQ(d.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(d.sec(), 1.5);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(300);
  const auto b = Duration::millis(200);
  EXPECT_EQ((a + b).ms(), 500.0);
  EXPECT_EQ((a - b).ms(), 100.0);
  EXPECT_EQ((a * 2.0).ms(), 600.0);
  EXPECT_EQ((a / 3).ms(), 100.0);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
}

TEST(Duration, CompoundAssignment) {
  auto d = Duration::millis(10);
  d += Duration::millis(5);
  EXPECT_EQ(d.ms(), 15.0);
  d -= Duration::millis(10);
  EXPECT_EQ(d.ms(), 5.0);
}

TEST(Duration, Negation) {
  EXPECT_EQ((-Duration::millis(7)).ms(), -7.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::seconds(1.0), Duration::millis(1000));
  EXPECT_EQ(Duration::zero(), Duration::micros(0));
}

TEST(Duration, ScalarOnLeft) {
  EXPECT_EQ((2.0 * Duration::millis(4)).ms(), 8.0);
}

TEST(Duration, InfinityIsLargest) {
  EXPECT_GT(Duration::infinity(), Duration::seconds(1e12));
}

TEST(TimePoint, OriginIsZero) {
  EXPECT_EQ(TimePoint::origin().us(), 0);
}

TEST(TimePoint, PlusDuration) {
  const auto t = TimePoint::origin() + Duration::millis(250);
  EXPECT_EQ(t.ms(), 250.0);
}

TEST(TimePoint, MinusDurationAndPoint) {
  const auto t1 = TimePoint::from_us(500'000);
  const auto t0 = TimePoint::from_us(200'000);
  EXPECT_EQ((t1 - t0).ms(), 300.0);
  EXPECT_EQ((t1 - Duration::millis(100)).ms(), 400.0);
}

TEST(TimePoint, NeverComparesLargest) {
  EXPECT_TRUE(TimePoint::never().is_never());
  EXPECT_GT(TimePoint::never(), TimePoint::from_us(1'000'000'000));
  EXPECT_FALSE(TimePoint::origin().is_never());
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::from_us(1), TimePoint::from_us(2));
  EXPECT_EQ(TimePoint::from_us(5), TimePoint::origin() + Duration::micros(5));
}

TEST(TimePoint, CompoundPlus) {
  auto t = TimePoint::origin();
  t += Duration::seconds(2.0);
  EXPECT_DOUBLE_EQ(t.sec(), 2.0);
}

}  // namespace
}  // namespace rpv::sim
