#include "cellular/radio_model.hpp"

#include <gtest/gtest.h>

namespace rpv::cellular {
namespace {

CellLayout two_cell_layout() {
  CellLayout l;
  l.name = "test";
  l.cells.push_back({1, {0, 0, 30}, 43.0, 6.0});
  l.cells.push_back({2, {1000, 0, 30}, 43.0, 6.0});
  return l;
}

RadioConfig quiet_config() {
  RadioConfig cfg;
  cfg.shadowing_stddev_db = 0.0;   // deterministic for unit checks
  cfg.side_lobe_ripple_db = 0.0;
  return cfg;
}

TEST(RadioModel, NearCellIsStrongest) {
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({100, 0, 1.5});
  EXPECT_EQ(radio.measurements().front().cell_id, 1u);
  radio.update({900, 0, 1.5});
  EXPECT_EQ(radio.measurements().front().cell_id, 2u);
}

TEST(RadioModel, RsrpDecreasesWithDistance) {
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({100, 0, 1.5});
  const double near = radio.rsrp_of(1);
  radio.update({400, 0, 1.5});
  const double far = radio.rsrp_of(1);
  EXPECT_GT(near, far);
}

TEST(RadioModel, MeasurementsSortedDescending) {
  sim::Rng rng{2};
  const auto layout = make_urban_layout(rng);
  RadioModel radio{RadioConfig{}, layout, sim::Rng{1}};
  radio.update({0, 0, 50});
  const auto& ms = radio.measurements();
  for (std::size_t i = 1; i < ms.size(); ++i) {
    EXPECT_GE(ms[i - 1].rsrp_dbm, ms[i].rsrp_dbm);
  }
}

TEST(RadioModel, UnknownCellRsrpIsFloor) {
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({0, 0, 1.5});
  EXPECT_EQ(radio.rsrp_of(999), -150.0);
}

TEST(RadioModel, AltitudeReducesPathLossExponent) {
  // With LoS at altitude, a *distant* cell attenuates less: its RSRP at
  // 120 m should beat its RSRP at ground for the same horizontal distance.
  const auto layout = two_cell_layout();
  auto cfg = quiet_config();
  RadioModel radio{cfg, layout, sim::Rng{1}};
  radio.update({800, 0, 1.5});
  const double ground = radio.rsrp_of(1);  // cell 1 is 800 m away
  radio.update({800, 0, 120.0});
  const double air = radio.rsrp_of(1);
  EXPECT_GT(air, ground);
}

TEST(RadioModel, RankingMarginShrinksInAir) {
  // The airborne regime compresses the RSRP gap between serving and
  // neighbour cells — the paper's HO-frequency driver.
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({200, 0, 1.5});
  const double margin_ground =
      radio.rsrp_of(1) - radio.rsrp_of(2);
  radio.update({200, 0, 120.0});
  const double margin_air = radio.rsrp_of(1) - radio.rsrp_of(2);
  EXPECT_GT(margin_ground, margin_air);
}

TEST(RadioModel, SinrPositiveNearServingCell) {
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({50, 0, 1.5});
  EXPECT_GT(radio.sinr_db(1), 10.0);
}

TEST(RadioModel, CapacityWithinConfiguredBounds) {
  sim::Rng rng{4};
  const auto layout = make_urban_layout(rng);
  RadioConfig cfg;
  RadioModel radio{cfg, layout, sim::Rng{5}};
  for (double x = -600; x <= 600; x += 100) {
    radio.update({x, 0.0, 60.0});
    const double cap = radio.capacity_mbps(radio.measurements().front().cell_id);
    EXPECT_GE(cap, cfg.min_capacity_mbps);
    EXPECT_LE(cap, cfg.operator_cap_mbps);
  }
}

TEST(RadioModel, CapacityHigherAtBetterSinr) {
  const auto layout = two_cell_layout();
  RadioModel radio{quiet_config(), layout, sim::Rng{1}};
  radio.update({50, 0, 1.5});
  const double near_cap = radio.capacity_mbps(1);
  radio.update({850, 0, 1.5});  // serving still cell 1, now weak + interfered
  const double far_cap = radio.capacity_mbps(1);
  EXPECT_GT(near_cap, far_cap);
}

TEST(RadioModel, ShadowingIsSpatiallyCorrelated) {
  const auto layout = two_cell_layout();
  RadioConfig cfg;
  cfg.side_lobe_ripple_db = 0.0;
  cfg.shadowing_stddev_db = 8.0;
  cfg.shadowing_corr_distance_m = 50.0;
  RadioModel radio{cfg, layout, sim::Rng{7}};
  radio.update({500, 0, 1.5});
  const double r0 = radio.rsrp_of(1);
  radio.update({500.5, 0, 1.5});  // 0.5 m step: shadowing barely moves
  const double r1 = radio.rsrp_of(1);
  EXPECT_NEAR(r0, r1, 2.0);
}

TEST(RadioModel, DeterministicGivenSeed) {
  const auto layout = two_cell_layout();
  RadioModel a{RadioConfig{}, layout, sim::Rng{42}};
  RadioModel b{RadioConfig{}, layout, sim::Rng{42}};
  for (int i = 0; i < 20; ++i) {
    const geo::Vec3 p{i * 10.0, 0.0, 60.0};
    a.update(p);
    b.update(p);
    EXPECT_DOUBLE_EQ(a.measurements().front().rsrp_dbm,
                     b.measurements().front().rsrp_dbm);
  }
}

TEST(Layouts, MatchPaperCellCounts) {
  sim::Rng rng{1};
  EXPECT_EQ(make_urban_layout(rng).size(), 32u);
  EXPECT_EQ(make_rural_layout_p1(rng).size(), 18u);
  EXPECT_GT(make_rural_layout_p2(rng).size(),
            make_rural_layout_p1(rng).size());
}

TEST(Layouts, RuralIsSparserThanUrban) {
  sim::Rng rng{1};
  const auto urban = make_urban_layout(rng);
  const auto rural = make_rural_layout_p1(rng);
  auto mean_nearest = [](const CellLayout& l) {
    double total = 0.0;
    for (const auto& a : l.cells) {
      double best = 1e12;
      for (const auto& b : l.cells) {
        if (a.cell_id == b.cell_id) continue;
        best = std::min(best, geo::distance2d(a.pos, b.pos));
      }
      total += best;
    }
    return total / static_cast<double>(l.size());
  };
  EXPECT_GT(mean_nearest(rural), 3.0 * mean_nearest(urban));
}

TEST(Layouts, DistinctCellIds) {
  sim::Rng rng{1};
  for (const auto& layout : {make_urban_layout(rng), make_rural_layout_p1(rng),
                             make_rural_layout_p2(rng)}) {
    std::set<std::uint32_t> ids;
    for (const auto& c : layout.cells) ids.insert(c.cell_id);
    EXPECT_EQ(ids.size(), layout.size());
  }
}

}  // namespace
}  // namespace rpv::cellular
