// rpv::radiomap + rpv::uav: grid math, accumulation, merge algebra edges,
// canonical JSON round-trips and the strict loader, the warm-up golden pin,
// fleet-sharded map determinism across --jobs, and the connectivity-aware
// planner (including the kPlanned scenario policy staying byte-deterministic
// and non-perturbing without evidence).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>

#include "exec/run_artifact.hpp"
#include "experiment/mapping.hpp"
#include "experiment/scenario.hpp"
#include "fleet/fleet_engine.hpp"
#include "geo/flight_profiles.hpp"
#include "pipeline/report_json.hpp"
#include "radiomap/radio_map.hpp"
#include "radiomap/survey.hpp"
#include "uav/planner.hpp"

namespace {

using namespace rpv;

radiomap::GridSpec small_spec() {
  radiomap::GridSpec spec;
  spec.origin = {0.0, 0.0, 0.0};
  spec.voxel_xy_m = 10.0;
  spec.voxel_z_m = 20.0;
  spec.nx = 4;
  spec.ny = 3;
  spec.nz = 2;
  return spec;
}

// FNV-1a, the pin-friendly digest for byte strings too long to inline.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// --- grid geometry ----------------------------------------------------------

TEST(RadioMapGrid, IndexRoundTripsAndLayout) {
  const auto spec = small_spec();
  ASSERT_TRUE(spec.valid());
  EXPECT_EQ(spec.voxel_count(), 24u);
  // Lower face inclusive, upper exclusive.
  EXPECT_EQ(spec.index_of({0.0, 0.0, 0.0}).value(), 0u);
  EXPECT_EQ(spec.index_of({9.999, 0.0, 0.0}).value(), 0u);
  EXPECT_EQ(spec.index_of({10.0, 0.0, 0.0}).value(), 1u);
  // x fastest, then y, then z.
  EXPECT_EQ(spec.index_of({0.0, 10.0, 0.0}).value(), 4u);
  EXPECT_EQ(spec.index_of({0.0, 0.0, 20.0}).value(), 12u);
  EXPECT_EQ(spec.index_of({39.9, 29.9, 39.9}).value(), 23u);
  // Outside on any axis drops the point.
  EXPECT_FALSE(spec.index_of({-0.001, 0.0, 0.0}).has_value());
  EXPECT_FALSE(spec.index_of({40.0, 0.0, 0.0}).has_value());
  EXPECT_FALSE(spec.index_of({0.0, 30.0, 0.0}).has_value());
  EXPECT_FALSE(spec.index_of({0.0, 0.0, 40.0}).has_value());

  for (std::uint32_t i = 0; i < spec.voxel_count(); ++i) {
    const auto c = spec.center_of(i);
    ASSERT_TRUE(spec.index_of(c).has_value());
    EXPECT_EQ(spec.index_of(c).value(), i);
    const auto lo = spec.voxel_min(i);
    const auto hi = spec.voxel_max(i);
    EXPECT_LT(lo.x, c.x);
    EXPECT_LT(c.x, hi.x);
    EXPECT_LT(lo.z, c.z);
    EXPECT_LT(c.z, hi.z);
    EXPECT_EQ(spec.index_of(lo).value(), i);  // inclusive lower corner
  }
}

TEST(RadioMapGrid, InvalidSpecsRejected) {
  radiomap::GridSpec spec = small_spec();
  spec.voxel_xy_m = 0.0;
  EXPECT_FALSE(spec.valid());
  EXPECT_THROW(radiomap::RadioMap{spec}, std::invalid_argument);
  spec = small_spec();
  spec.nz = 0;
  EXPECT_FALSE(spec.valid());
  spec = small_spec();
  spec.nx = 1 << 13;
  spec.ny = 1 << 13;
  spec.nz = 4;  // 2^29 voxels
  EXPECT_THROW(radiomap::RadioMap{spec}, std::invalid_argument);
}

// --- accumulation -----------------------------------------------------------

TEST(RadioMap, AccumulatesPerVoxelAndPerCellStats) {
  radiomap::RadioMap map{small_spec()};
  EXPECT_TRUE(map.empty());
  const geo::Vec3 p{5.0, 5.0, 10.0};
  map.observe_measurement(p, 3, -90.0, 12.0, false);
  map.observe_measurement(p, 3, -100.0, 8.0, true);
  map.observe_measurement(p, 7, -80.0, 20.0, false);
  map.observe_rlf(p);
  map.observe_loss(p);
  map.observe_stall(p, 250.0);
  // Outside points are dropped silently.
  map.observe_measurement({-5.0, 0.0, 0.0}, 1, -50.0, 1.0, true);

  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.total_samples(), 3u);
  EXPECT_EQ(map.observed_voxels(), 1u);
  const auto* v = map.at(p);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->samples, 3u);
  EXPECT_EQ(v->ho_triggers, 1u);
  EXPECT_EQ(v->rlf_count, 1u);
  EXPECT_EQ(v->losses, 1u);
  EXPECT_EQ(v->stall_us, 250000u);
  EXPECT_NEAR(v->mean_rsrp_dbm(), -90.0, 1e-9);
  EXPECT_NEAR(v->mean_capacity_mbps(), 40.0 / 3.0, 1e-9);
  EXPECT_NEAR(v->ho_risk(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(v->stall_ms_per_tick(), 250.0 / 3.0, 1e-9);
  // Per-cell split, sorted by id.
  ASSERT_EQ(v->cells.size(), 2u);
  EXPECT_EQ(v->cells[0].cell_id, 3u);
  EXPECT_EQ(v->cells[0].samples, 2u);
  EXPECT_NEAR(v->cells[0].mean_rsrp_dbm(), -95.0, 1e-9);
  EXPECT_NEAR(v->cells[0].var_rsrp_db2(), 25.0, 1e-6);
  EXPECT_EQ(v->cells[1].cell_id, 7u);
  EXPECT_EQ(v->cells[1].samples, 1u);
  EXPECT_NEAR(v->var_rsrp_db2(), 200.0 / 3.0, 1e-6);
}

TEST(RadioMap, MergeRequiresMatchingSpec) {
  radiomap::RadioMap a{small_spec()};
  auto other = small_spec();
  other.nx = 5;
  radiomap::RadioMap b{other};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- canonical JSON ---------------------------------------------------------

TEST(RadioMapJson, RoundTripIsExact) {
  radiomap::RadioMap map{small_spec()};
  map.observe_measurement({5.0, 5.0, 10.0}, 3, -90.25, 12.5, true);
  map.observe_measurement({35.0, 25.0, 30.0}, 9, -101.5, 3.0, false);
  map.observe_stall({15.0, 5.0, 10.0}, 100.5);
  const auto bytes = map.canonical_bytes();
  const auto back = radiomap::radio_map_from_bytes(bytes);
  EXPECT_TRUE(map == back);
  EXPECT_EQ(bytes, back.canonical_bytes());
}

TEST(RadioMapJson, EmptyMapRoundTrips) {
  radiomap::RadioMap map{small_spec()};
  const auto back = radiomap::radio_map_from_bytes(map.canonical_bytes());
  EXPECT_TRUE(map == back);
}

TEST(RadioMapJson, LoaderRejectsMalformedDocuments) {
  radiomap::RadioMap map{small_spec()};
  map.observe_measurement({5.0, 5.0, 10.0}, 3, -90.0, 12.0, false);
  const auto good = map.to_json();

  // Not an object / missing fields / wrong schema.
  EXPECT_THROW(radiomap::radio_map_from_bytes("[]"), std::runtime_error);
  EXPECT_THROW(radiomap::radio_map_from_bytes("{}"), std::runtime_error);
  {
    auto v = good;
    v.set("schema", std::int64_t{99});
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    auto v = good;
    auto spec = v.at("spec");
    spec.set("nx", std::int64_t{0});
    v.set("spec", std::move(spec));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    auto v = good;
    auto spec = v.at("spec");
    spec.set("voxel_z_m", -1.0);
    v.set("spec", std::move(spec));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    // Voxel index out of range.
    auto v = good;
    auto voxels = v.at("voxels");
    auto entry = voxels.items()[0];
    entry.set("i", std::uint64_t{24});
    auto arr = json::Value::array();
    arr.push_back(std::move(entry));
    v.set("voxels", std::move(arr));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    // Duplicate (unsorted) voxel indices.
    auto v = good;
    auto voxels = v.at("voxels");
    auto entry = voxels.items()[0];
    auto dup = entry;
    auto arr = json::Value::array();
    arr.push_back(std::move(entry));
    arr.push_back(std::move(dup));
    v.set("voxels", std::move(arr));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    // All-zero voxel entries are not representable output; reject them.
    auto v = good;
    auto arr = json::Value::array();
    auto entry = json::Value::object();
    entry.set("i", std::uint64_t{0})
        .set("samples", std::uint64_t{0})
        .set("rsrp_milli_sum", std::int64_t{0})
        .set("rsrp_milli_sq_sum", std::uint64_t{0})
        .set("capacity_kbps_sum", std::uint64_t{0})
        .set("ho_triggers", std::uint64_t{0})
        .set("rlf_count", std::uint64_t{0})
        .set("losses", std::uint64_t{0})
        .set("stall_us", std::uint64_t{0})
        .set("cells", json::Value::array());
    arr.push_back(std::move(entry));
    v.set("voxels", std::move(arr));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
  {
    // Unsorted cells inside a voxel.
    auto v = good;
    auto voxels = v.at("voxels");
    auto entry = voxels.items()[0];
    auto cells = entry.at("cells");
    auto cell = cells.items()[0];
    auto cells2 = json::Value::array();
    auto dup = cell;
    cells2.push_back(std::move(cell));
    cells2.push_back(std::move(dup));
    entry.set("cells", std::move(cells2));
    auto arr = json::Value::array();
    arr.push_back(std::move(entry));
    v.set("voxels", std::move(arr));
    EXPECT_THROW(radiomap::radio_map_from_json(v), std::runtime_error);
  }
}

// --- survey trajectory ------------------------------------------------------

TEST(RadioMapSurvey, LawnmowerCoversEveryAltitudeLayerInsideExtent) {
  const auto spec = experiment::default_map_spec();
  const auto traj = radiomap::make_survey_trajectory(spec);
  ASSERT_FALSE(traj.empty());
  std::vector<bool> z_layers(spec.nz, false);
  for (sim::TimePoint t = traj.start(); t <= traj.end();
       t = t + sim::Duration::seconds(1.0)) {
    const auto idx = spec.index_of(traj.position(t));
    ASSERT_TRUE(idx.has_value()) << "survey left the grid extent";
    z_layers[spec.z_of(*idx)] = true;
  }
  // The default ladder {30,60,90,120} mows layers 1..4 of the default
  // 5-layer spec; the takeoff climb crosses layer 0 on the way up, so every
  // layer the planner can score holds samples.
  for (std::uint32_t z = 0; z < spec.nz; ++z) {
    EXPECT_TRUE(z_layers[z]) << "altitude layer " << z << " never surveyed";
  }
}

// --- warm-up map golden pin -------------------------------------------------

// Fixed-seed single-flight urban warm-up map. The pinned digest is over the
// canonical bytes, so ANY byte of the map artifact moving — radio model,
// event stream, sink attribution, JSON encoder — fails here. Refresh per
// docs/TESTING.md if the change is intentional.
TEST(RadioMapGolden, UrbanWarmupSeed7301PinnedBytes) {
  experiment::Scenario base;
  base.env = experiment::Environment::kUrban;
  base.seed = 7301;
  experiment::MapBuildConfig cfg;
  cfg.flights = 1;
  const auto map =
      experiment::build_radio_map(base, experiment::default_map_spec(), cfg);
  EXPECT_EQ(map.observed_voxels(), 129u);
  EXPECT_EQ(map.total_samples(), 3996u);
  const auto bytes = map.canonical_bytes();
  EXPECT_EQ(bytes.size(), 39092u);
  EXPECT_EQ(fnv1a(bytes), 0x15c942a72dd2342aull);

  // And the artifact store round-trips those exact bytes.
  const auto dir = std::filesystem::temp_directory_path() / "rpv_map_store";
  std::filesystem::remove_all(dir);
  const exec::RunArtifactStore store{dir};
  const auto path = store.write_radio_map("pin", "urban", map);
  const auto loaded = exec::RunArtifactStore::load_radio_map(path);
  EXPECT_TRUE(map == loaded);
  EXPECT_EQ(bytes, loaded.canonical_bytes());
  std::filesystem::remove_all(dir);
}

// --- fleet-sharded accumulation determinism ---------------------------------

TEST(RadioMapFleet, MapBytesIdenticalAcrossWorkerCounts) {
  fleet::FleetScenario s;
  s.base.env = experiment::Environment::kUrban;
  s.base.mobility = experiment::Mobility::kAir;
  s.base.seed = 4242;
  s.sessions = 24;  // two shards
  s.horizon_sec = 20.0;
  s.build_map = true;
  s.map_spec = experiment::default_map_spec();

  const fleet::FleetEngine j1{{.jobs = 1}};
  const fleet::FleetEngine j8{{.jobs = 8}};
  const auto r1 = j1.run(s);
  const auto r8 = j8.run(s);
  EXPECT_GT(r1.radio_map.total_samples(), 0u);
  EXPECT_EQ(r1.radio_map.canonical_bytes(), r8.radio_map.canonical_bytes());
  // The map rides along without perturbing the fleet metrics.
  EXPECT_EQ(fleet::fleet_report_to_json(r1.report).dump(),
            fleet::fleet_report_to_json(r8.report).dump());
}

// --- planner ----------------------------------------------------------------

TEST(Planner, EmptyOrColdMapKeepsTheMission) {
  const auto mission = geo::make_flight_profile({0.0, 0.0, 0.0});
  radiomap::RadioMap cold{experiment::default_map_spec()};
  const auto plan = uav::plan_trajectory(mission, cold);
  EXPECT_GT(plan.candidates, 1u);
  EXPECT_EQ(plan.selected, 0u);
  EXPECT_FALSE(plan.replanned);
  EXPECT_EQ(plan.trajectory.waypoints().size(), mission.waypoints().size());
  for (std::size_t i = 0; i < mission.waypoints().size(); ++i) {
    EXPECT_EQ(plan.trajectory.waypoints()[i].pos.z, mission.waypoints()[i].pos.z);
  }
}

TEST(Planner, ReroutesBelowAPoisonedAltitudeBand) {
  // Paint every voxel above 80 m as a stall zone; below stays clean.
  const auto spec = experiment::default_map_spec();
  radiomap::RadioMap map{spec};
  for (std::uint32_t i = 0; i < spec.voxel_count(); ++i) {
    const auto c = spec.center_of(i);
    const bool high = c.z > 80.0;
    for (int k = 0; k < 50; ++k) {
      map.observe_measurement(c, 1, high ? -110.0 : -80.0, high ? 2.0 : 20.0,
                              high);
      if (high) map.observe_stall(c, 40.0);
    }
  }
  const auto mission = geo::make_flight_profile({0.0, 0.0, 0.0});
  const auto plan = uav::plan_trajectory(mission, map);
  EXPECT_TRUE(plan.replanned);
  EXPECT_LT(plan.predicted_stall_ms_selected, plan.predicted_stall_ms_direct);
  EXPECT_GT(plan.deviation_m, 0.0);
  double max_z = 0.0;
  for (const auto& wp : plan.trajectory.waypoints()) {
    max_z = std::max(max_z, wp.pos.z);
  }
  EXPECT_LE(max_z, 80.0 + 1e-9);
}

TEST(Planner, PredictedStallMatchesSampleCostModel) {
  // One uniformly-poisoned map: predicted stall scales with path duration.
  const auto spec = experiment::default_map_spec();
  radiomap::RadioMap map{spec};
  for (std::uint32_t i = 0; i < spec.voxel_count(); ++i) {
    map.observe_stall(spec.center_of(i), 10.0);
    map.observe_measurement(spec.center_of(i), 1, -90.0, 20.0, false);
  }
  geo::Trajectory path;
  path.move_to({5.0, 5.0, 35.0}, 1.0).hover(sim::Duration::seconds(10.0));
  uav::PlannerConfig cfg;
  const double cost = uav::predicted_stall_ms(path, map, cfg);
  // 11 samples x 10 ticks x 10 ms stall/tick.
  EXPECT_NEAR(cost, 11.0 * 10.0 * 10.0, 1e-6);
}

// --- kPlanned scenario policy ----------------------------------------------

TEST(PlannedPolicy, WithoutMapMatchesProactiveByteForByte) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.seed = 515;
  s.policy = experiment::Policy::kProactive;
  const auto pro = experiment::run_scenario(s);
  s.policy = experiment::Policy::kPlanned;
  const auto planned = experiment::run_scenario(s);
  EXPECT_EQ(pipeline::report_to_json(pro).dump(),
            pipeline::report_to_json(planned).dump());
}

TEST(PlannedPolicy, WithMapIsDeterministicAndAnnotated) {
  experiment::Scenario base;
  base.env = experiment::Environment::kUrban;
  base.seed = 7301;
  experiment::MapBuildConfig cfg;
  cfg.flights = 1;
  auto map = std::make_shared<radiomap::RadioMap>(
      experiment::build_radio_map(base, experiment::default_map_spec(), cfg));

  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.seed = 7301;
  s.policy = experiment::Policy::kPlanned;
  s.radio_map = map;
  const auto a = experiment::run_scenario(s);
  const auto b = experiment::run_scenario(s);
  EXPECT_EQ(pipeline::report_to_json(a).dump(),
            pipeline::report_to_json(b).dump());
  EXPECT_TRUE(a.planned);
  EXPECT_GT(a.plan_candidates, 1u);
  EXPECT_TRUE(a.prediction.map_prior);
  // Schema v7 planning + map-prior fields survive the JSON round trip.
  const auto back = pipeline::report_from_json(pipeline::report_to_json(a));
  EXPECT_EQ(back.planned, a.planned);
  EXPECT_EQ(back.plan_replanned, a.plan_replanned);
  EXPECT_EQ(back.plan_candidates, a.plan_candidates);
  EXPECT_EQ(back.plan_selected, a.plan_selected);
  EXPECT_EQ(back.plan_deviation_m, a.plan_deviation_m);
  EXPECT_EQ(back.prediction.map_prior, a.prediction.map_prior);
  EXPECT_EQ(back.prediction.map_prior_arms, a.prediction.map_prior_arms);
}

}  // namespace
