#include "experiment/runner.hpp"

#include <gtest/gtest.h>

namespace rpv::experiment {
namespace {

TEST(Scenario, Names) {
  EXPECT_EQ(environment_name(Environment::kUrban), "urban");
  EXPECT_EQ(environment_name(Environment::kRuralP1), "rural-p1");
  EXPECT_EQ(environment_name(Environment::kRuralP2), "rural-p2");
  EXPECT_EQ(mobility_name(Mobility::kAir), "air");
  EXPECT_EQ(mobility_name(Mobility::kGround), "ground");
}

TEST(Scenario, StaticBitratesMatchPaper) {
  EXPECT_DOUBLE_EQ(static_bitrate_bps(Environment::kUrban), 25e6);
  EXPECT_DOUBLE_EQ(static_bitrate_bps(Environment::kRuralP1), 8e6);
  EXPECT_DOUBLE_EQ(static_bitrate_bps(Environment::kRuralP2), 8e6);
}

TEST(Scenario, SessionConfigFollowsEnvironment) {
  Scenario urban;
  urban.env = Environment::kUrban;
  Scenario rural;
  rural.env = Environment::kRuralP1;
  const auto u = make_session_config(urban);
  const auto r = make_session_config(rural);
  EXPECT_GT(u.link.radio.peak_capacity_mbps, 2.0 * r.link.radio.peak_capacity_mbps);
  EXPECT_GT(u.static_bitrate_bps, r.static_bitrate_bps);
}

TEST(Scenario, P2HasMoreRuralCapacityThanP1) {
  Scenario p1;
  p1.env = Environment::kRuralP1;
  Scenario p2;
  p2.env = Environment::kRuralP2;
  EXPECT_GT(make_session_config(p2).link.radio.peak_capacity_mbps,
            make_session_config(p1).link.radio.peak_capacity_mbps);
  sim::Rng rng{1};
  EXPECT_GT(make_layout(p2, rng).size(), make_layout(p1, rng).size());
}

TEST(Scenario, AckWindowOverrideReachesReceiver) {
  Scenario s;
  s.rfc8888_ack_window = 64;
  EXPECT_EQ(make_session_config(s).receiver.rfc8888_ack_window, 64);
}

TEST(Scenario, TrajectoryMatchesMobility) {
  sim::Rng rng{1};
  Scenario air;
  air.mobility = Mobility::kAir;
  double max_alt = 0.0;
  const auto t = make_trajectory(air, rng);
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::seconds(1.0)) {
    max_alt = std::max(max_alt, t.altitude(tp));
  }
  EXPECT_NEAR(max_alt, 120.0, 1.0);

  Scenario ground;
  ground.mobility = Mobility::kGround;
  const auto g = make_trajectory(ground, rng);
  for (auto tp = g.start(); tp < g.end(); tp += sim::Duration::seconds(1.0)) {
    EXPECT_LT(g.altitude(tp), 2.0);
  }
}

TEST(Runner, CampaignRunsRequestedCount) {
  Campaign c;
  c.scenario.env = Environment::kRuralP1;
  c.scenario.cc = pipeline::CcKind::kStatic;
  c.runs = 3;
  const auto rs = run_campaign(c);
  EXPECT_EQ(rs.size(), 3u);
  // Distinct seeds produce distinct runs.
  EXPECT_NE(rs[0].packets_sent, rs[1].packets_sent);
}

TEST(Runner, PoolingConcatenatesSamples) {
  Campaign c;
  c.scenario.env = Environment::kRuralP1;
  c.scenario.cc = pipeline::CcKind::kStatic;
  c.runs = 2;
  const auto rs = run_campaign(c);
  const auto owd = pool_owd(rs);
  EXPECT_EQ(owd.count(), rs[0].owd_ms.size() + rs[1].owd_ms.size());
  const auto fps = pool_fps(rs);
  EXPECT_EQ(fps.count(), rs[0].fps_windows.size() + rs[1].fps_windows.size());
  EXPECT_EQ(pool_het(rs).size(), rs[0].het_ms.size() + rs[1].het_ms.size());
  EXPECT_EQ(pool_ho_frequency(rs).size(), 2u);
}

TEST(Runner, MeanHelpers) {
  Campaign c;
  c.scenario.env = Environment::kRuralP1;
  c.scenario.cc = pipeline::CcKind::kStatic;
  c.runs = 2;
  const auto rs = run_campaign(c);
  const double mean_per = (rs[0].per + rs[1].per) / 2.0;
  EXPECT_DOUBLE_EQ(experiment::mean_per(rs), mean_per);
  EXPECT_GE(mean_stalls_per_minute(rs), 0.0);
}

TEST(Runner, RttBandFiltering) {
  Campaign c;
  c.scenario.env = Environment::kUrban;
  c.scenario.cc = pipeline::CcKind::kNone;
  c.scenario.probe_interval = sim::Duration::millis(200);
  c.runs = 1;
  const auto rs = run_campaign(c);
  const auto low = pool_rtt_in_band(rs, 0.0, 20.0);
  const auto high = pool_rtt_in_band(rs, 101.0, 140.0);
  EXPECT_GT(low.count(), 0u);
  EXPECT_GT(high.count(), 0u);
  const auto all = pool_rtt_in_band(rs, 0.0, 1e9);
  EXPECT_EQ(all.count(), rs[0].rtt_by_altitude.size());
}

}  // namespace
}  // namespace rpv::experiment
