// Unit tests for the calendar event queue (sim/event_queue.hpp) and its
// supporting pieces: sim::Pool, EventFn, Timer. The stress tests replay the
// same schedule/cancel trace through a reference binary heap and require the
// calendar to produce the identical (timestamp, FIFO seq) pop order.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "sim/pool.hpp"
#include "sim/time.hpp"

namespace rpv::sim {
namespace {

// --- Pool ---

TEST(Pool, AcquireReleaseReusesLifo) {
  Pool<int> pool;
  const auto a = pool.acquire(1);
  const auto b = pool.acquire(2);
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.live(), 0u);
  // LIFO: the most recently released slot is handed out first.
  EXPECT_EQ(pool.acquire(3), b);
  EXPECT_EQ(pool.acquire(4), a);
  EXPECT_EQ(pool[a], 4);
  EXPECT_EQ(pool[b], 3);
}

TEST(Pool, AddressesStableAcrossGrowth) {
  Pool<std::uint64_t> pool;
  const auto first = pool.acquire(std::uint64_t{42});
  std::uint64_t* p = &pool[first];
  for (int i = 0; i < 2000; ++i) pool.acquire(static_cast<std::uint64_t>(i));
  EXPECT_EQ(&pool[first], p);  // chunked storage: no reallocation
  EXPECT_EQ(pool[first], 42u);
  EXPECT_EQ(pool.live(), 2001u);
}

TEST(Pool, DestructorsRunOnReleaseAndClear) {
  static int live_objects = 0;
  struct Counted {
    Counted() { ++live_objects; }
    ~Counted() { --live_objects; }
  };
  Pool<Counted> pool;
  const auto a = pool.acquire();
  pool.acquire();
  EXPECT_EQ(live_objects, 2);
  pool.release(a);
  EXPECT_EQ(live_objects, 1);
  pool.clear();
  EXPECT_EQ(live_objects, 0);
}

TEST(Pool, HoldsMoveOnlyTypes) {
  Pool<std::unique_ptr<int>> pool;
  const auto idx = pool.acquire(std::make_unique<int>(7));
  EXPECT_EQ(*pool[idx], 7);
  auto out = std::move(pool[idx]);
  pool.release(idx);
  EXPECT_EQ(*out, 7);
}

// --- EventFn ---

TEST(EventFn, InvokesSmallCapture) {
  int hits = 0;
  EventFn f{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, MoveTransfersOwnership) {
  int hits = 0;
  EventFn a{[&hits] { ++hits; }};
  EventFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, LargeCaptureFallsBackToHeapAndStillRuns) {
  struct Big {
    char payload[4 * EventFn::kInlineBytes] = {};
    int* out;
  };
  int result = 0;
  Big big;
  big.out = &result;
  big.payload[0] = 9;
  EventFn f{[big] { *big.out = big.payload[0]; }};
  f();
  EXPECT_EQ(result, 9);
}

TEST(EventFn, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    EventFn f{[token] { (void)token; }};
    token.reset();
    EXPECT_FALSE(watch.expired());  // alive inside the callable
    EventFn g{std::move(f)};
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

// --- EventQueue: basic ordering ---

TEST(EventQueue, PopsInTimestampOrder) {
  EventQueue q;
  std::vector<std::int64_t> order;
  for (const std::int64_t t : {900, 100, 500, 300, 700}) {
    q.schedule(TimePoint::from_us(t), [&order, t] { order.push_back(t); });
  }
  TimePoint at;
  EventFn fn;
  while (q.pop(&at, &fn)) fn();
  EXPECT_EQ(order, (std::vector<std::int64_t>{100, 300, 500, 700, 900}));
}

TEST(EventQueue, FifoOnEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(TimePoint::from_us(1000), [&order, i] { order.push_back(i); });
  }
  TimePoint at;
  EventFn fn;
  while (q.pop(&at, &fn)) fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, NextTimeTracksEarliestPending) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_never());
  q.schedule(TimePoint::from_us(500), [] {});
  const auto h = q.schedule(TimePoint::from_us(100), [] {});
  EXPECT_EQ(q.next_time().us(), 100);
  q.cancel(h);
  EXPECT_EQ(q.next_time().us(), 500);
}

// --- EventQueue: wheel/overflow boundary crossings ---

TEST(EventQueue, EventsBeyondWheelWindowOverflowAndReturn) {
  // The wheel covers ~262 ms; schedule both sides of the boundary and far
  // beyond, then verify global ordering survives the migrations.
  EventQueue q;
  std::vector<std::int64_t> order;
  const std::vector<std::int64_t> times_us = {
      100,        262'000,    262'144,     263'000,   500'000,
      1'000'000,  5'000'000,  50'000'000,  262'143,   262'145,
      524'288,    786'432,    10'000'000,  2'000'000, 300'000};
  for (const auto t : times_us) {
    q.schedule(TimePoint::from_us(t), [&order, t] { order.push_back(t); });
  }
  std::vector<std::int64_t> expected = times_us;
  std::sort(expected.begin(), expected.end());
  TimePoint at;
  EventFn fn;
  std::int64_t last = -1;
  while (q.pop(&at, &fn)) {
    EXPECT_GE(at.us(), last);
    last = at.us();
    fn();
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, RebaseAcrossIdleGapThenScheduleEarlier) {
  // Pop a far-future event (forcing the window to rebase onto it), then
  // schedule before the new window base; the "front" staging heap must keep
  // the ordering exact.
  EventQueue q;
  std::vector<std::int64_t> order;
  q.schedule(TimePoint::from_us(100), [&order] { order.push_back(100); });
  q.schedule(TimePoint::from_us(10'000'000),
             [&order] { order.push_back(10'000'000); });
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(&at, &fn));
  fn();  // 100 us; window now rebases toward the 10 s event on next access
  EXPECT_EQ(q.next_time().us(), 10'000'000);
  // An earlier (but still future) schedule must pop before the 10 s event.
  q.schedule(TimePoint::from_us(9'000'000),
             [&order] { order.push_back(9'000'000); });
  q.schedule(TimePoint::from_us(9'000'000 + 50),
             [&order] { order.push_back(9'000'050); });
  while (q.pop(&at, &fn)) fn();
  EXPECT_EQ(order,
            (std::vector<std::int64_t>{100, 9'000'000, 9'000'050, 10'000'000}));
}

TEST(EventQueue, InterleavedPopAndScheduleAcrossWindows) {
  // Ladder pattern: each event schedules another one window ahead.
  EventQueue q;
  int fired = 0;
  std::int64_t last_us = -1;
  std::function<void(std::int64_t)> ladder = [&](std::int64_t t) {
    ++fired;
    EXPECT_GT(t, last_us);
    last_us = t;
    if (fired < 50) {
      const std::int64_t next = t + 300'000;  // > one wheel window away
      q.schedule(TimePoint::from_us(next), [&ladder, next] { ladder(next); });
    }
  };
  q.schedule(TimePoint::from_us(10), [&ladder] { ladder(10); });
  TimePoint at;
  EventFn fn;
  while (q.pop(&at, &fn)) fn();
  EXPECT_EQ(fired, 50);
}

TEST(EventQueue, OverflowDrainAcrossHorizonsSkipsTombstoneHeads) {
  // Regression for the rebase path at wheel drain: when the window rebases
  // onto the overflow heap, cancelled entries at the heap's head must be
  // discarded *before* the new base granule is chosen. Build five full wheel
  // windows beyond the first where a run of tombstones heads the overflow
  // heap at every rebase — and one window that is cancelled wholesale, so a
  // single rebase has to skip an entire dead horizon — then drain with
  // pop_until() limits pinned exactly to the horizon boundaries.
  constexpr std::int64_t kWindowUs = 1024 * 256;  // buckets x granule
  EventQueue q;
  std::vector<std::int64_t> order;
  std::vector<std::int64_t> expected;
  std::vector<EventQueue::Handle> doomed;

  const auto live = [&](std::int64_t t) {
    q.schedule(TimePoint::from_us(t), [&order, t] { order.push_back(t); });
    expected.push_back(t);
  };
  const auto dead = [&](std::int64_t t) {
    doomed.push_back(q.schedule(TimePoint::from_us(t), [] {
      ADD_FAILURE() << "cancelled event fired";
    }));
  };

  // Window 0 lives in the wheel; windows 1..5 go through the overflow heap.
  live(100);
  live(kWindowUs - 1);
  for (int w = 1; w <= 5; ++w) {
    const std::int64_t base = w * kWindowUs;
    dead(base);  // scheduled before live(base): same timestamp, lower seq
    dead(base + 7);
    dead(base + 300);
    if (w == 3) {
      // Entire horizon cancelled: the rebase out of window 2 must pop five
      // consecutive tombstones and anchor directly on window 4.
      dead(base + 50'000);
      dead(base + 200'000);
    } else {
      live(base);  // live event dead-on the horizon boundary
      live(base + 50'000);
      live(base + 200'000);
    }
  }
  for (const auto h : doomed) EXPECT_TRUE(q.cancel(h));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(q.size(), expected.size());

  // pop_until()'s limit is inclusive: the live event sitting exactly on each
  // boundary pops in that round even though a cancelled tombstone with the
  // same timestamp (and lower seq) heads the overflow heap.
  TimePoint at;
  EventFn fn;
  std::size_t idx = 0;
  for (int w = 1; w <= 6; ++w) {
    const auto limit = TimePoint::from_us(w * kWindowUs);
    while (q.pop_until(limit, &at, &fn)) {
      EXPECT_LE(at.us(), limit.us());
      fn();
    }
    while (idx < expected.size() && expected[idx] <= limit.us()) ++idx;
    ASSERT_EQ(order.size(), idx) << "wrong pop count at horizon " << w;
    // Peeking across the boundary forces the rebase (tombstone heads and,
    // after window 2, the fully dead horizon) before the next round pops.
    if (idx < expected.size()) {
      EXPECT_EQ(q.next_time().us(), expected[idx]);
    } else {
      EXPECT_TRUE(q.next_time().is_never());
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(order, expected);
}

// --- EventQueue: cancellation and handle safety ---

TEST(EventQueue, CancelMakesPopSkipTombstone) {
  EventQueue q;
  bool ran = false;
  const auto h = q.schedule(TimePoint::from_us(10), [&ran] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  TimePoint at;
  EventFn fn;
  EXPECT_FALSE(q.pop(&at, &fn));
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsRejected) {
  EventQueue q;
  const auto h = q.schedule(TimePoint::from_us(10), [] {});
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(&at, &fn));
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  const auto h1 = q.schedule(TimePoint::from_us(10), [] {});
  TimePoint at;
  EventFn fn;
  ASSERT_TRUE(q.pop(&at, &fn));  // h1 fired; its pool slot is free
  bool ran = false;
  const auto h2 = q.schedule(TimePoint::from_us(20), [&ran] { ran = true; });
  EXPECT_EQ(h2.slot, h1.slot);  // LIFO pool reuse: same slot, new generation
  EXPECT_NE(h2.gen, h1.gen);
  EXPECT_FALSE(q.cancel(h1));  // stale handle is inert
  ASSERT_TRUE(q.pop(&at, &fn));
  fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, GenerationSurvivesManyReuses) {
  EventQueue q;
  EventQueue::Handle first = q.schedule(TimePoint::from_us(1), [] {});
  q.cancel(first);
  for (int i = 0; i < 1000; ++i) {
    const auto h = q.schedule(TimePoint::from_us(i + 2), [] {});
    EXPECT_EQ(h.slot, first.slot);
    EXPECT_FALSE(q.cancel(first));
    EXPECT_TRUE(q.cancel(h));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelReleasesSlotImmediately) {
  // A cancel-heavy workload (re-armed timers) must not grow the pool: the
  // slot is recycled at cancel time, not when the tombstone is popped.
  EventQueue q;
  for (int i = 0; i < 10'000; ++i) {
    const auto h = q.schedule(TimePoint::from_us(100 + i), [] {});
    q.cancel(h);
  }
  EXPECT_TRUE(q.empty());
  TimePoint at;
  EventFn fn;
  EXPECT_FALSE(q.pop(&at, &fn));
}

// --- EventQueue: stress vs reference heap ---

struct RefEvent {
  std::int64_t at_us;
  std::uint64_t seq;
  int tag;
};
struct RefAfter {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.at_us != b.at_us) return a.at_us > b.at_us;
    return a.seq > b.seq;
  }
};

TEST(EventQueue, MillionEventStressMatchesReferenceHeap) {
  // Random mixed workload: schedules across near/far horizons (with heavy
  // timestamp collisions to exercise FIFO ties), interleaved pops, and
  // random cancellation. The calendar must pop the exact sequence a plain
  // (timestamp, seq) min-heap pops.
  EventQueue q;
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefAfter> ref;
  std::mt19937_64 rng{0xC0FFEE};
  std::vector<int> got;
  std::vector<std::pair<EventQueue::Handle, RefEvent>> cancellable;

  std::int64_t now_us = 0;
  std::uint64_t seq = 0;
  int tag = 0;
  int scheduled = 0;
  const int kTotal = 1'000'000;

  std::vector<bool> cancelled;  // indexed by tag
  cancelled.reserve(kTotal);

  while (scheduled < kTotal || !ref.empty()) {
    const auto r = rng();
    const bool do_schedule = scheduled < kTotal && (ref.empty() || (r % 5) != 0);
    if (do_schedule) {
      // Horizon mix: 60% inside the wheel window, 30% past it, 10% huge.
      std::int64_t delta;
      switch (rng() % 10) {
        case 0: delta = static_cast<std::int64_t>(rng() % 100'000'000); break;
        case 1:
        case 2:
        case 3: delta = static_cast<std::int64_t>(rng() % 3'000'000); break;
        default: delta = static_cast<std::int64_t>(rng() % 200'000); break;
      }
      // Collisions: quantize 1/3 of timestamps onto 1 ms ticks.
      if (rng() % 3 == 0) delta -= delta % 1000;
      const std::int64_t at = now_us + delta;
      const int t = tag++;
      cancelled.push_back(false);
      const auto h =
          q.schedule(TimePoint::from_us(at), [&got, t] { got.push_back(t); });
      ref.push(RefEvent{at, seq++, t});
      if (rng() % 16 == 0) cancellable.emplace_back(h, RefEvent{at, 0, t});
      ++scheduled;
    } else if (rng() % 7 == 0 && !cancellable.empty()) {
      const auto pick = rng() % cancellable.size();
      const auto [h, e] = cancellable[pick];
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      if (q.cancel(h)) cancelled[static_cast<std::size_t>(e.tag)] = true;
    } else {
      // Pop one event from both and compare.
      while (!ref.empty() &&
             cancelled[static_cast<std::size_t>(ref.top().tag)]) {
        ref.pop();
      }
      TimePoint at;
      EventFn fn;
      const bool live = q.pop(&at, &fn);
      if (!live) {
        ASSERT_TRUE(ref.empty());
        continue;
      }
      ASSERT_FALSE(ref.empty());
      const RefEvent e = ref.top();
      ref.pop();
      ASSERT_EQ(at.us(), e.at_us);
      fn();
      ASSERT_FALSE(got.empty());
      ASSERT_EQ(got.back(), e.tag);
      now_us = at.us();
    }
  }
  // Fully drained and every pop matched.
  EXPECT_TRUE(q.empty());
  std::size_t cancelled_count = 0;
  for (const bool c : cancelled) cancelled_count += c ? 1u : 0u;
  EXPECT_EQ(got.size() + cancelled_count, static_cast<std::size_t>(kTotal));
}

TEST(EventQueue, SizeTracksLiveEventsUnderChurn) {
  EventQueue q;
  std::mt19937_64 rng{7};
  std::vector<EventQueue::Handle> handles;
  std::size_t expect = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto h = q.schedule(TimePoint::from_us(static_cast<std::int64_t>(
                                  rng() % 1'000'000)),
                              [] {});
    ++expect;
    if (rng() % 2 == 0) {
      handles.push_back(h);
    }
    if (rng() % 3 == 0 && !handles.empty()) {
      if (q.cancel(handles.back())) --expect;
      handles.pop_back();
    }
    ASSERT_EQ(q.size(), expect);
  }
}

}  // namespace
}  // namespace rpv::sim
