#include "video/player_model.hpp"

#include <gtest/gtest.h>

namespace rpv::video {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

Frame frame_at(std::uint32_t id) {
  Frame f;
  f.id = id;
  f.capture_time = TimePoint::from_us(id * 33'333);
  return f;
}

struct Fixture {
  Simulator sim;
  PlayerModel player;
  explicit Fixture(PlayerConfig cfg = {}) : player{sim, cfg} {}

  // Frame `id` becomes ready at time `ready_us`.
  void feed(std::uint32_t id, std::int64_t ready_us, double ssim = 0.95) {
    sim.schedule_at(TimePoint::from_us(ready_us),
                    [this, id, ssim] { player.on_frame_ready(frame_at(id), ssim); });
  }
};

TEST(Player, PlaysAllFramesInSteadyState) {
  Fixture f;
  for (std::uint32_t i = 0; i < 90; ++i) f.feed(i, i * 33'333 + 200'000);
  f.sim.run_all();
  f.player.finish();
  EXPECT_EQ(f.player.frames_played(), 90u);
  EXPECT_EQ(f.player.frames_skipped(), 0u);
  EXPECT_EQ(f.player.stall_count(), 0u);
}

TEST(Player, PlaybackLatencyMeasuredFromCapture) {
  Fixture f;
  for (std::uint32_t i = 0; i < 30; ++i) f.feed(i, i * 33'333 + 200'000);
  f.sim.run_all();
  const auto& lat = f.player.playback_latency_ms();
  ASSERT_FALSE(lat.empty());
  EXPECT_NEAR(lat.samples().front().value, 200.0, 1.0);
}

TEST(Player, SteadyFpsNearThirty) {
  Fixture f;
  for (std::uint32_t i = 0; i < 300; ++i) f.feed(i, i * 33'333 + 200'000);
  f.sim.run_all();
  f.player.finish();
  ASSERT_FALSE(f.player.fps_windows().empty());
  for (const double fps : f.player.fps_windows()) {
    EXPECT_NEAR(fps, 30.0, 3.0);
  }
}

TEST(Player, GapBeyondThresholdCountsAsStall) {
  Fixture f;
  f.feed(0, 100'000);
  f.feed(1, 600'000);  // 500 ms gap: a stall at the 300 ms threshold
  f.sim.run_all();
  EXPECT_EQ(f.player.stall_count(), 1u);
}

TEST(Player, StallsPerMinuteComputed) {
  Fixture f;
  // One stall across a ~60 s playback.
  f.feed(0, 0);
  f.feed(1, 500'000);
  for (std::uint32_t i = 2; i < 1800; ++i) f.feed(i, 500'000 + i * 33'333);
  f.sim.run_all();
  EXPECT_NEAR(f.player.stalls_per_minute(), 1.0, 0.2);
}

TEST(Player, OutOfOrderFrameSkipped) {
  Fixture f;
  f.feed(1, 100'000);
  f.feed(0, 200'000);  // older than the already-played frame 1
  f.sim.run_all();
  EXPECT_EQ(f.player.frames_played(), 1u);
  EXPECT_EQ(f.player.frames_skipped(), 1u);
}

TEST(Player, SsimRecordedPerPlayedFrame) {
  Fixture f;
  f.feed(0, 100'000, 0.91);
  f.feed(1, 140'000, 0.42);
  f.sim.run_all();
  ASSERT_EQ(f.player.played_ssim().size(), 2u);
  EXPECT_DOUBLE_EQ(f.player.played_ssim()[0], 0.91);
  EXPECT_DOUBLE_EQ(f.player.played_ssim()[1], 0.42);
}

TEST(Player, ProactiveSlowdownWhenStarved) {
  PlayerConfig cfg;
  Fixture f{cfg};
  // Frames arrive at 50 ms spacing (slower than the 33 ms playback clock):
  // the player is starved on every frame and must slow down, not stall.
  for (std::uint32_t i = 0; i < 60; ++i) f.feed(i, i * 50'000);
  f.sim.run_all();
  f.player.finish();
  EXPECT_EQ(f.player.frames_played(), 60u);
  EXPECT_EQ(f.player.stall_count(), 0u);
  // Playback rate dropped: measured FPS below nominal.
  double mean_fps = 0.0;
  for (const double v : f.player.fps_windows()) mean_fps += v;
  mean_fps /= static_cast<double>(f.player.fps_windows().size());
  EXPECT_LT(mean_fps, 28.0);
}

TEST(Player, CatchUpAfterBurst) {
  Fixture f;
  f.feed(0, 100'000);
  // A 1-second outage, then 30 frames arrive at once.
  for (std::uint32_t i = 1; i <= 30; ++i) f.feed(i, 1'100'000);
  for (std::uint32_t i = 31; i < 90; ++i) f.feed(i, 1'100'000 + (i - 30) * 33'333);
  f.sim.run_all();
  const auto& lat = f.player.playback_latency_ms();
  ASSERT_GT(lat.count(), 60u);
  // Playback latency must come back down after the burst (catch-up rate).
  const auto values = lat.values();
  const double peak = *std::max_element(values.begin(), values.end());
  const double final_lat = lat.samples().back().value;
  EXPECT_LT(final_lat, peak * 0.75);
}

TEST(Player, LastPlayedFrameIdTracked) {
  Fixture f;
  f.feed(0, 100'000);
  f.feed(1, 140'000);
  f.sim.run_all();
  EXPECT_EQ(f.player.last_played_frame_id(), 1u);
}

TEST(Player, FinishWithNoFramesIsSafe) {
  Fixture f;
  f.player.finish();
  EXPECT_TRUE(f.player.fps_windows().empty());
  EXPECT_EQ(f.player.stalls_per_minute(), 0.0);
}

}  // namespace
}  // namespace rpv::video
