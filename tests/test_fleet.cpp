// rpv::fleet — streaming-merge algebra (Histogram / MetricsRegistry merge is
// associative and merge-order independent), SharedDeployment load accounting,
// load-dependent radio capacity, the deduplicated grid-layout generator
// (golden pins so the named deployments can never drift), fleet determinism
// across worker counts, and the fleet-of-one == standalone-session identity.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellular/base_station.hpp"
#include "cellular/radio_model.hpp"
#include "exec/campaign_engine.hpp"
#include "experiment/scenario.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/fleet_report.hpp"
#include "fleet/shared_deployment.hpp"
#include "geo/trajectory.hpp"
#include "obs/metrics_registry.hpp"
#include "pipeline/report_json.hpp"
#include "pipeline/session.hpp"
#include "sim/rng.hpp"

namespace rpv {
namespace {

using obs::Component;
using obs::Event;
using obs::EventKind;

Event stall_event(double ms) {
  Event e;
  e.component = Component::kReceiver;
  e.kind = EventKind::kStall;
  e.payload = obs::StallPayload{ms};
  return e;
}

Event received_event(double owd_ms) {
  Event e;
  e.component = Component::kReceiver;
  e.kind = EventKind::kPacketReceived;
  obs::PacketPayload p;
  p.owd_ms = owd_ms;
  e.payload = p;
  return e;
}

Event handover_event() {
  Event e;
  e.component = Component::kCellular;
  e.kind = EventKind::kHandoverStart;
  e.payload = obs::HandoverPayload{1, 2, 120000};
  return e;
}

// --- merge algebra ----------------------------------------------------------

TEST(FleetMerge, HistogramMergeMatchesSingleFeed) {
  auto a = fleet::make_stall_histogram("stall_ms");
  auto b = fleet::make_stall_histogram("stall_ms");
  auto all = fleet::make_stall_histogram("stall_ms");
  const std::vector<double> xs_a = {10.0, 350.0, 1200.0, 9999.0};
  const std::vector<double> xs_b = {500.0, 500.0, 2000.0};
  for (const double x : xs_a) { a.add(x); all.add(x); }
  for (const double x : xs_b) { b.add(x); all.add(x); }
  a.merge(b);
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.total, xs_a.size() + xs_b.size());
}

TEST(FleetMerge, HistogramMergeRejectsLayoutMismatch) {
  auto stall = fleet::make_stall_histogram("stall_ms");
  auto owd = fleet::make_owd_histogram("owd_ms");
  EXPECT_THROW(stall.merge(owd), std::invalid_argument);
  auto renamed = fleet::make_stall_histogram("other");
  EXPECT_THROW(stall.merge(renamed), std::invalid_argument);
}

TEST(FleetMerge, RegistryMergeIsAssociativeAndOrderIndependent) {
  // Three registries with distinct, overlapping event mixes.
  obs::MetricsRegistry a, b, c;
  for (int i = 0; i < 5; ++i) a.on_event(stall_event(400.0 + 100.0 * i));
  for (int i = 0; i < 7; ++i) a.on_event(received_event(30.0 + i));
  for (int i = 0; i < 3; ++i) b.on_event(handover_event());
  for (int i = 0; i < 9; ++i) b.on_event(received_event(250.0));
  c.on_event(stall_event(5500.0));
  c.on_event(handover_event());

  // (a + b) + c
  obs::MetricsRegistry left;
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // c + (b + a) — different association and different order.
  obs::MetricsRegistry inner;
  inner.merge(b);
  inner.merge(a);
  obs::MetricsRegistry right;
  right.merge(c);
  right.merge(inner);

  EXPECT_EQ(left.summary(), right.summary());
  EXPECT_EQ(left.count(Component::kCellular, EventKind::kHandoverStart), 4u);
  EXPECT_EQ(left.count(Component::kReceiver, EventKind::kStall), 6u);

  // Merging an empty registry is the identity.
  obs::MetricsRegistry with_empty;
  with_empty.merge(a);
  with_empty.merge(obs::MetricsRegistry{});
  EXPECT_EQ(with_empty.summary(), a.summary());
}

// --- SharedDeployment -------------------------------------------------------

TEST(SharedDeployment, SharesPeaksAndDrainAccounting) {
  sim::Rng rng{7};
  fleet::SharedDeployment dep{cellular::make_urban_layout(rng)};
  const auto cell_a = dep.layout().cells[0].cell_id;
  const auto cell_b = dep.layout().cells[1].cell_id;

  const int s0 = dep.attach();
  const int s1 = dep.attach();
  const int s2 = dep.attach();
  ASSERT_EQ(dep.attached(), 3u);

  // Nothing committed yet: everyone sees a full share.
  EXPECT_DOUBLE_EQ(dep.prb_share(cell_a), 1.0);

  dep.report(s0, cell_a, true);
  dep.report(s1, cell_a, true);
  dep.report(s2, cell_b, true);
  dep.commit_epoch();
  EXPECT_EQ(dep.active_users(cell_a), 2u);
  EXPECT_DOUBLE_EQ(dep.prb_share(cell_a), 0.5);
  // A cell with one user keeps the full share — the N=1 identity.
  EXPECT_EQ(dep.active_users(cell_b), 1u);
  EXPECT_DOUBLE_EQ(dep.prb_share(cell_b), 1.0);

  // s1's mission ends: it camps but no longer loads the cell.
  dep.report(s1, cell_a, false);
  dep.commit_epoch();
  EXPECT_EQ(dep.active_users(cell_a), 1u);
  EXPECT_DOUBLE_EQ(dep.prb_share(cell_a), 1.0);

  // Peaks remember the busiest epoch, per cell and globally.
  EXPECT_EQ(dep.peak_users(cell_a), 2u);
  EXPECT_EQ(dep.peak_users(cell_b), 1u);
  EXPECT_EQ(dep.peak_cell_load(), 2u);
  EXPECT_EQ(dep.peaks().size(), dep.layout().cells.size());
}

TEST(SharedDeployment, UnknownCellIsUnloaded) {
  sim::Rng rng{7};
  const fleet::SharedDeployment dep{cellular::make_urban_layout(rng)};
  EXPECT_DOUBLE_EQ(dep.prb_share(0xdeadu), 1.0);
  EXPECT_EQ(dep.active_users(0xdeadu), 0u);
}

// --- load-dependent capacity ------------------------------------------------

TEST(FleetRadio, FullShareIsBitIdenticalAndLoadScales) {
  sim::Rng layout_rng{11};
  const auto layout = cellular::make_urban_layout(layout_rng);
  cellular::RadioModel radio{{}, layout, sim::Rng{22}};
  radio.update({0.0, 0.0, 60.0});
  const auto serving = radio.measurements().front().cell_id;

  const double unloaded = radio.capacity_mbps(serving);
  EXPECT_EQ(unloaded, radio.capacity_mbps(serving, 1.0));

  const double half = radio.capacity_mbps(serving, 0.5);
  const double tenth = radio.capacity_mbps(serving, 0.1);
  EXPECT_LT(half, unloaded);
  EXPECT_LE(half, 0.5 * unloaded + 1e-9);
  EXPECT_LT(tenth, half);
  // Even a starved UE keeps a residual scheduling grant.
  EXPECT_GT(radio.capacity_mbps(serving, 1e-6), 0.0);
}

// --- deduplicated layout builders -------------------------------------------

TEST(GridLayout, NamedBuildersEqualTheirSpecs) {
  const struct {
    cellular::CellLayout (*builder)(sim::Rng&);
    cellular::GridLayoutSpec spec;
  } cases[] = {
      {cellular::make_urban_layout, cellular::urban_grid_spec()},
      {cellular::make_rural_layout_p1, cellular::rural_p1_grid_spec()},
      {cellular::make_rural_layout_p2, cellular::rural_p2_grid_spec()},
  };
  for (const auto& c : cases) {
    sim::Rng r1{777}, r2{777};
    const auto named = c.builder(r1);
    const auto spec = cellular::make_grid_layout(r2, c.spec);
    ASSERT_EQ(named.name, spec.name);
    ASSERT_EQ(named.cells.size(), spec.cells.size());
    for (std::size_t i = 0; i < named.cells.size(); ++i) {
      EXPECT_EQ(named.cells[i].cell_id, spec.cells[i].cell_id);
      EXPECT_EQ(named.cells[i].pos.x, spec.cells[i].pos.x);
      EXPECT_EQ(named.cells[i].pos.y, spec.cells[i].pos.y);
      EXPECT_EQ(named.cells[i].pos.z, spec.cells[i].pos.z);
      EXPECT_EQ(named.cells[i].tx_power_dbm, spec.cells[i].tx_power_dbm);
      EXPECT_EQ(named.cells[i].downtilt_deg, spec.cells[i].downtilt_deg);
    }
  }
}

// Golden pins taken from the pre-dedup builders at seed 12345. If any of
// these move, every seeded campaign in the repo silently re-rolls.
TEST(GridLayout, GoldenPinsSeed12345) {
  {
    sim::Rng rng{12345};
    const auto l = cellular::make_urban_layout(rng);
    ASSERT_EQ(l.cells.size(), 32u);
    EXPECT_EQ(l.cells[0].cell_id, 1u);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.x, -670.74302042120928);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.y, -744.39453584465991);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.z, 39.450017395192816);
    EXPECT_DOUBLE_EQ(l.cells[0].downtilt_deg, 8.0);
    EXPECT_DOUBLE_EQ(l.cells[0].tx_power_dbm, 43.0);
    EXPECT_EQ(l.cells[16].cell_id, 17u);
    EXPECT_DOUBLE_EQ(l.cells[16].pos.x, 380.83991882776871);
    EXPECT_DOUBLE_EQ(l.cells[16].pos.y, -94.706786739229841);
    EXPECT_DOUBLE_EQ(l.cells[16].pos.z, 34.367942857869835);
    EXPECT_EQ(l.cells[31].cell_id, 32u);
    EXPECT_DOUBLE_EQ(l.cells[31].pos.x, -425.82711973123111);
    EXPECT_DOUBLE_EQ(l.cells[31].pos.y, 724.20654267301018);
    EXPECT_DOUBLE_EQ(l.cells[31].pos.z, 30.665559354477306);
  }
  {
    sim::Rng rng{12345};
    const auto l = cellular::make_rural_layout_p1(rng);
    ASSERT_EQ(l.cells.size(), 18u);
    EXPECT_EQ(l.cells[0].cell_id, 1u);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.x, -3804.9534694747285);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.y, -4295.9635722977328);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.z, 54.450017395192816);
    EXPECT_DOUBLE_EQ(l.cells[0].downtilt_deg, 4.0);
    EXPECT_DOUBLE_EQ(l.cells[0].tx_power_dbm, 46.0);
    EXPECT_DOUBLE_EQ(l.cells[9].pos.x, 4043.6141783987919);
    EXPECT_DOUBLE_EQ(l.cells[9].pos.y, -1163.2199641541338);
    EXPECT_DOUBLE_EQ(l.cells[17].pos.x, -327.92579215722225);
    EXPECT_DOUBLE_EQ(l.cells[17].pos.y, 3667.4310305606641);
  }
  {
    sim::Rng rng{12345};
    const auto l = cellular::make_rural_layout_p2(rng);
    ASSERT_EQ(l.cells.size(), 30u);
    EXPECT_EQ(l.cells[0].cell_id, 101u);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.x, -3829.3342857903872);
    EXPECT_DOUBLE_EQ(l.cells[0].pos.y, -4258.9681257605162);
    EXPECT_EQ(l.cells[15].cell_id, 116u);
    EXPECT_DOUBLE_EQ(l.cells[15].pos.x, 620.66920249543989);
    EXPECT_DOUBLE_EQ(l.cells[15].pos.y, -268.785308072573);
    EXPECT_EQ(l.cells[29].cell_id, 130u);
    EXPECT_DOUBLE_EQ(l.cells[29].pos.x, 3904.1542115425159);
    EXPECT_DOUBLE_EQ(l.cells[29].pos.y, 3875.8394979522491);
  }
}

// --- trajectory truncation --------------------------------------------------

TEST(Trajectory, TruncatedClampsAndPreservesPath) {
  experiment::Scenario s;
  s.mobility = experiment::Mobility::kAir;
  sim::Rng rng{5};
  const auto full = experiment::make_trajectory(s, rng);
  const auto cut_at = sim::Duration::seconds(30.0);
  const auto cut = full.truncated(cut_at);
  EXPECT_EQ(cut.end() - cut.start(), cut_at);
  // The truncated path is the same motion up to the cut.
  for (const double t : {0.0, 7.5, 15.0, 29.9}) {
    const auto tp = cut.start() + sim::Duration::seconds(t);
    EXPECT_EQ(cut.position(tp).x, full.position(tp).x);
    EXPECT_EQ(cut.position(tp).y, full.position(tp).y);
    EXPECT_EQ(cut.position(tp).z, full.position(tp).z);
  }
  // Truncating past the end is the identity.
  EXPECT_EQ(full.truncated(sim::Duration::seconds(1e6)).end(), full.end());
}

// --- fleet engine -----------------------------------------------------------

fleet::FleetScenario small_fleet(int sessions, double horizon_sec) {
  fleet::FleetScenario s;
  s.base.env = experiment::Environment::kUrban;
  s.base.mobility = experiment::Mobility::kStatic;
  s.base.cc = pipeline::CcKind::kGcc;
  s.base.seed = 42000;
  s.sessions = sessions;
  s.horizon_sec = horizon_sec;
  return s;
}

TEST(FleetEngine, FleetOfOneMatchesStandaloneSession) {
  const auto s = small_fleet(1, 15.0);
  const fleet::FleetEngine engine{{.jobs = 1, .keep_reports = true}};
  const auto result = engine.run(s);
  ASSERT_EQ(result.session_reports.size(), 1u);

  auto mission = fleet::plan_fleet(s);
  pipeline::Session solo{mission.configs[0], mission.layout,
                         &mission.trajectories[0], mission.environment};
  const auto solo_report = solo.run();
  EXPECT_EQ(pipeline::report_to_json(result.session_reports[0]).dump(),
            pipeline::report_to_json(solo_report).dump());
  EXPECT_EQ(result.report.peak_cell_load, 1u);
  EXPECT_EQ(result.report.mean_goodput_mbps, solo_report.avg_goodput_mbps);
}

TEST(FleetEngine, ByteIdenticalAcrossWorkerCounts) {
  const auto s = small_fleet(112, 10.0);  // 7 shards, jagged tail shard
  const auto r1 = fleet::FleetEngine{{.jobs = 1}}.run(s);
  const auto r8 = fleet::FleetEngine{{.jobs = 8}}.run(s);
  EXPECT_EQ(fleet::fleet_report_to_json(r1.report).dump(2),
            fleet::fleet_report_to_json(r8.report).dump(2));
}

TEST(FleetEngine, ContentionDegradesPerUavGoodput) {
  const auto solo = fleet::FleetEngine{{.jobs = 1}}.run(small_fleet(1, 20.0));
  const auto packed = fleet::FleetEngine{{.jobs = 1}}.run(small_fleet(32, 20.0));
  EXPECT_GT(packed.report.peak_cell_load, 1u);
  EXPECT_LT(packed.report.mean_goodput_mbps, solo.report.mean_goodput_mbps);
  // Contention-attributed samples only exist in the loaded fleet.
  EXPECT_EQ(solo.report.owd_contended_ms.total, 0u);
  EXPECT_GT(packed.report.owd_contended_ms.total, 0u);
}

TEST(FleetEngine, ReportJsonRoundTrips) {
  const auto result = fleet::FleetEngine{{.jobs = 2}}.run(small_fleet(8, 8.0));
  const auto j = fleet::fleet_report_to_json(result.report);
  EXPECT_EQ(j.at("schema").as_i64(), pipeline::kReportSchemaVersion);
  EXPECT_EQ(j.at("kind").as_string(), "fleet");
  const auto back = fleet::fleet_report_from_json(j);
  EXPECT_EQ(back, result.report);
  EXPECT_EQ(fleet::fleet_report_to_json(back).dump(2), j.dump(2));
}

TEST(FleetEngine, GridExpansionCoversAxesInOrder) {
  fleet::FleetGridAxes axes;
  axes.sizes = {1, 8};
  axes.envs = {experiment::Environment::kUrban,
               experiment::Environment::kRuralP1};
  const auto cells = fleet::expand_fleet_grid(axes, small_fleet(1, 10.0));
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].label, "urban-static-gcc-n1");
  EXPECT_EQ(cells[1].label, "urban-static-gcc-n8");
  EXPECT_EQ(cells[2].label, "rural-p1-static-gcc-n1");
  EXPECT_EQ(cells[3].label, "rural-p1-static-gcc-n8");
}

TEST(FleetEngine, RejectsMultipathFleets) {
  auto s = small_fleet(4, 5.0);
  s.base.multipath = experiment::Multipath::kDuplicate;
  EXPECT_THROW(fleet::plan_fleet(s), std::invalid_argument);
}

// --- campaign-level streaming merge ----------------------------------------

TEST(CampaignMerge, MergedScenariosAreJobsIndependent) {
  std::vector<experiment::Scenario> scenarios(2);
  scenarios[0].seed = 900;
  scenarios[1].seed = 901;
  scenarios[1].cc = pipeline::CcKind::kStatic;
  const exec::CampaignEngine e1{{.jobs = 1}};
  const exec::CampaignEngine e4{{.jobs = 4}};
  const auto m1 = e1.run_scenarios_merged(scenarios);
  const auto m4 = e4.run_scenarios_merged(scenarios);
  EXPECT_EQ(m1.runs, 2u);
  EXPECT_EQ(pipeline::metrics_summary_to_json(m1.metrics).dump(),
            pipeline::metrics_summary_to_json(m4.metrics).dump());
}

}  // namespace
}  // namespace rpv
