#include "rtp/jitter_buffer.hpp"

#include <gtest/gtest.h>

#include "rtp/packetizer.hpp"

namespace rpv::rtp {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

struct Fixture {
  Simulator sim;
  std::vector<FrameReleaseEvent> released;
  JitterBuffer jb;

  explicit Fixture(JitterBufferConfig cfg = {})
      : jb{sim, cfg, [this](const FrameReleaseEvent& ev) { released.push_back(ev); }} {}

  // Deliver all packets of a frame at `arrival`, capture at `capture`.
  void deliver_frame(Packetizer& pktzr, std::uint32_t id, std::size_t bytes,
                     TimePoint capture, TimePoint arrival,
                     int drop_index = -1) {
    video::Frame f;
    f.id = id;
    f.size_bytes = bytes;
    f.capture_time = capture;
    auto packets = pktzr.packetize(f);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (static_cast<int>(i) == drop_index) continue;
      auto p = packets[i];
      sim.schedule_at(arrival + Duration::micros(static_cast<std::int64_t>(i)),
                      [this, p] { jb.on_packet(p); });
    }
  }
};

TEST(JitterBuffer, ReleasesAtLatencyDeadline) {
  Fixture f;
  Packetizer pk;
  // First packet arrives 40 ms after capture -> offset 40 ms; release at
  // capture + 40 + 150 = 190 ms.
  f.deliver_frame(pk, 0, 3000, TimePoint::origin(), TimePoint::from_us(40'000));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  EXPECT_FALSE(f.released[0].corrupted);
  EXPECT_NEAR(f.released[0].release_time.ms(), 190.0, 1.0);
}

TEST(JitterBuffer, CompleteFrameNotHeldThroughGrace) {
  Fixture f;
  Packetizer pk;
  f.deliver_frame(pk, 0, 1200, TimePoint::origin(), TimePoint::from_us(30'000));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  EXPECT_LT(f.released[0].release_time.ms(), 185.0);
}

TEST(JitterBuffer, InOrderReleaseAcrossFrames) {
  Fixture f;
  Packetizer pk;
  for (std::uint32_t i = 0; i < 10; ++i) {
    f.deliver_frame(pk, i, 2500, TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(f.released[i].frame_id, i);
}

TEST(JitterBuffer, LostMiddlePacketConcealedWithEvidence) {
  Fixture f;
  Packetizer pk;
  // Frame 0 misses its middle packet; frame 1 arrives complete afterwards,
  // providing the loss evidence.
  f.deliver_frame(pk, 0, 3600, TimePoint::origin(), TimePoint::from_us(40'000),
                  /*drop_index=*/1);
  f.deliver_frame(pk, 1, 3600, TimePoint::from_us(33'333),
                  TimePoint::from_us(73'333));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 2u);
  EXPECT_TRUE(f.released[0].corrupted);
  EXPECT_EQ(f.released[0].packets_received, 2);
  EXPECT_FALSE(f.released[1].corrupted);
}

TEST(JitterBuffer, LostMarkerStillConceals) {
  Fixture f;
  Packetizer pk;
  f.deliver_frame(pk, 0, 3600, TimePoint::origin(), TimePoint::from_us(40'000),
                  /*drop_index=*/2);  // the marker packet
  f.deliver_frame(pk, 1, 3600, TimePoint::from_us(33'333),
                  TimePoint::from_us(73'333));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 2u);
  EXPECT_TRUE(f.released[0].corrupted);
}

TEST(JitterBuffer, ReorderedPacketsWithinFrameTolerated) {
  Fixture f;
  Packetizer pk;
  video::Frame fr;
  fr.id = 0;
  fr.size_bytes = 3600;
  fr.capture_time = TimePoint::origin();
  auto packets = pk.packetize(fr);
  // Deliver in reverse order.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto p = packets[packets.size() - 1 - i];
    f.sim.schedule_at(TimePoint::from_us(40'000 + static_cast<std::int64_t>(i) * 100),
                      [&f, p] { f.jb.on_packet(p); });
  }
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  EXPECT_FALSE(f.released[0].corrupted);
}

TEST(JitterBuffer, HardTimeoutReleasesTailLoss) {
  JitterBufferConfig cfg;
  cfg.hard_timeout = Duration::millis(400);
  Fixture f{cfg};
  Packetizer pk;
  // Only frame 0 exists and its marker is lost: no evidence ever arrives,
  // so the hard timeout must fire.
  f.deliver_frame(pk, 0, 3600, TimePoint::origin(), TimePoint::from_us(40'000),
                  /*drop_index=*/2);
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  EXPECT_TRUE(f.released[0].corrupted);
  EXPECT_NEAR(f.released[0].release_time.ms(), 190.0 + 400.0, 50.0);
}

TEST(JitterBuffer, LateFrameReleasedOnCompletion) {
  Fixture f;
  Packetizer pk;
  // First frame sets the timeline.
  f.deliver_frame(pk, 0, 1200, TimePoint::origin(), TimePoint::from_us(40'000));
  // Second frame arrives 500 ms late (network spike), after its deadline.
  f.deliver_frame(pk, 1, 1200, TimePoint::from_us(33'333),
                  TimePoint::from_us(533'333));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 2u);
  EXPECT_FALSE(f.released[1].corrupted);
  EXPECT_GE(f.released[1].release_time, TimePoint::from_us(533'333));
}

TEST(JitterBuffer, SenderDiscardGapTriggersResyncPlateau) {
  JitterBufferConfig cfg;
  cfg.resync_gap_packets = 50;
  cfg.resync_stall = Duration::millis(700);
  Fixture f{cfg};
  Packetizer pk;
  f.deliver_frame(pk, 0, 1200, TimePoint::origin(), TimePoint::from_us(40'000));
  // Simulate a sender-side flush: burn 100 sequence numbers.
  video::Frame burned;
  burned.id = 1;
  burned.size_bytes = 1200 * 100;
  burned.capture_time = TimePoint::from_us(33'333);
  pk.packetize(burned);  // never delivered
  // Next frame arrives promptly (sender queue now empty).
  f.deliver_frame(pk, 2, 1200, TimePoint::from_us(66'666),
                  TimePoint::from_us(106'666));
  f.sim.run_all();
  EXPECT_EQ(f.jb.resyncs(), 1u);
  ASSERT_EQ(f.released.size(), 2u);
  // The post-resync frame is held on the elevated plateau.
  EXPECT_GT((f.released[1].release_time - f.released[1].rtp_timestamp).ms(),
            600.0);
}

TEST(JitterBuffer, PlateauDecaysOverFrames) {
  JitterBufferConfig cfg;
  cfg.resync_stall = Duration::millis(700);
  cfg.offset_decay = 0.05;
  Fixture f{cfg};
  Packetizer pk;
  f.deliver_frame(pk, 0, 1200, TimePoint::origin(), TimePoint::from_us(40'000));
  video::Frame burned;
  burned.id = 1;
  burned.size_bytes = 1200 * 200;
  burned.capture_time = TimePoint::from_us(33'333);
  pk.packetize(burned);
  for (std::uint32_t i = 2; i < 80; ++i) {
    f.deliver_frame(pk, i, 1200, TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  ASSERT_GT(f.released.size(), 60u);
  const auto early = f.released[2];
  const auto late = f.released.back();
  const double early_lat = (early.release_time - early.rtp_timestamp).ms();
  const double late_lat = (late.release_time - late.rtp_timestamp).ms();
  EXPECT_GT(early_lat, 500.0);
  EXPECT_LT(late_lat, early_lat * 0.5);  // decayed substantially
}

TEST(JitterBuffer, DropOnLatencyDiscardsLateFrames) {
  JitterBufferConfig cfg;
  cfg.drop_on_latency = true;  // Appendix A.4 mode
  Fixture f{cfg};
  Packetizer pk;
  f.deliver_frame(pk, 0, 1200, TimePoint::origin(), TimePoint::from_us(40'000));
  // 500 ms late: past deadline + grace, dropped instead of played.
  f.deliver_frame(pk, 1, 1200, TimePoint::from_us(33'333),
                  TimePoint::from_us(533'333));
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  EXPECT_EQ(f.released[0].frame_id, 0u);
  EXPECT_GE(f.jb.frames_dropped(), 1u);
}

TEST(JitterBuffer, PacketsForReleasedFrameCountLate) {
  Fixture f;
  Packetizer pk;
  video::Frame fr;
  fr.id = 0;
  fr.size_bytes = 1200;
  fr.capture_time = TimePoint::origin();
  const auto packets = pk.packetize(fr);
  f.sim.schedule_at(TimePoint::from_us(40'000),
                    [&f, p = packets[0]] { f.jb.on_packet(p); });
  f.sim.run_all();
  ASSERT_EQ(f.released.size(), 1u);
  // A duplicate / straggler for the already-released frame.
  f.jb.on_packet(packets[0]);
  EXPECT_EQ(f.jb.late_packets(), 1u);
  EXPECT_EQ(f.released.size(), 1u);
}

TEST(JitterBuffer, OlderPendingFramesFlushedOnRelease) {
  Fixture f;
  Packetizer pk;
  // Frame 0 incomplete forever (head loss, no marker); frame 1 completes.
  f.deliver_frame(pk, 0, 3600, TimePoint::origin(), TimePoint::from_us(40'000),
                  /*drop_index=*/2);
  f.deliver_frame(pk, 1, 1200, TimePoint::from_us(33'333),
                  TimePoint::from_us(73'333));
  f.sim.run_all();
  // Frame 0 released corrupted (evidence), frame 1 clean; nothing pending.
  EXPECT_EQ(f.jb.pending_frames(), 0u);
}

TEST(JitterBuffer, StatsCountersConsistent) {
  Fixture f;
  Packetizer pk;
  for (std::uint32_t i = 0; i < 20; ++i) {
    f.deliver_frame(pk, i, 2500, TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  EXPECT_EQ(f.jb.frames_released(), 20u);
  EXPECT_EQ(f.jb.frames_dropped(), 0u);
  EXPECT_EQ(f.jb.extra_offset_ms(), 0.0);
}

}  // namespace
}  // namespace rpv::rtp
