// Replays the libFuzzer seed corpus (tests/fuzz/corpus/) through the shared
// one-input bodies under the default gcc build, where libFuzzer itself is
// unavailable. This keeps the corpus green between fuzz CI runs: every seed
// must parse-or-throw without crashing, and every valid seed must hit its
// canonical dump fixpoint (the bodies abort on a violation, which gtest
// reports as a crash). The clang fuzz job (-DRPV_FUZZ=ON) mutates from the
// same directories; see docs/TESTING.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.hpp"
#include "radiomap/radio_map.hpp"

#ifndef RPV_FUZZ_CORPUS_DIR
#error "RPV_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace rpv {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files(const std::string& target) {
  const fs::path dir = fs::path(RPV_FUZZ_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(FuzzCorpus, JsonSeedsReplayClean) {
  const auto files = corpus_files("json");
  ASSERT_GE(files.size(), 5u);
  for (const auto& p : files) {
    SCOPED_TRACE(p.filename().string());
    fuzz::one_json(slurp(p));
  }
}

TEST(FuzzCorpus, EventsSeedsReplayClean) {
  const auto files = corpus_files("events");
  ASSERT_GE(files.size(), 3u);
  for (const auto& p : files) {
    SCOPED_TRACE(p.filename().string());
    fuzz::one_events(slurp(p));
  }
}

TEST(FuzzCorpus, RadioMapSeedsReplayClean) {
  const auto files = corpus_files("radiomap");
  ASSERT_GE(files.size(), 2u);
  for (const auto& p : files) {
    SCOPED_TRACE(p.filename().string());
    fuzz::one_radiomap(slurp(p));
  }
}

TEST(FuzzCorpus, RadioMapSeedsAreValidMaps) {
  // The radiomap seeds must stay *valid* inputs (not just non-crashing), so
  // the fuzzer starts from the accepted grammar rather than rediscovering it.
  for (const auto& p : corpus_files("radiomap")) {
    SCOPED_TRACE(p.filename().string());
    EXPECT_NO_THROW((void)radiomap::radio_map_from_bytes(slurp(p)));
  }
}

}  // namespace
}  // namespace rpv
