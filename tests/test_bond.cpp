// rpv::bond — reorder-window edge cases (cross-path skew ordering, overflow
// and timeout flushes, duplicate suppression), the adaptive FEC controller's
// attack/release ladder, mid-stream FEC retuning, bonded end-to-end smoke per
// policy (including FEC recovery through an injected RLF on one of the two
// paths), and byte-identical bonded campaigns across worker counts.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bond/fec_controller.hpp"
#include "bond/policy.hpp"
#include "bond/reorder_window.hpp"
#include "exec/campaign_engine.hpp"
#include "experiment/scenario.hpp"
#include "pipeline/multipath_session.hpp"
#include "pipeline/report_json.hpp"
#include "rtp/fec.hpp"
#include "sim/simulator.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

net::Packet media(std::uint16_t tseq, std::uint32_t frame, TimePoint sent) {
  net::Packet p;
  p.id = tseq;
  p.kind = net::PacketKind::kRtpVideo;
  p.transport_seq = tseq;
  p.frame_id = frame;
  p.size_bytes = 1200;
  p.sent = sent;
  return p;
}

struct WindowFixture {
  sim::Simulator sim;
  std::vector<std::pair<std::uint16_t, int>> out;  // (transport_seq, path)
  std::unique_ptr<bond::ReorderWindow> window;

  explicit WindowFixture(bond::ReorderWindowConfig cfg = {}) {
    window = std::make_unique<bond::ReorderWindow>(
        sim, cfg, [this](net::Packet p, int path) {
          out.emplace_back(p.transport_seq, path);
        });
  }
};

// --- ReorderWindow ---

TEST(ReorderWindow, InOrderStreamPassesThroughUnheld) {
  WindowFixture f;
  for (std::uint16_t s = 1; s <= 5; ++s) {
    f.window->on_packet(media(s, s, f.sim.now()), 0);
  }
  ASSERT_EQ(f.out.size(), 5u);
  for (std::uint16_t s = 1; s <= 5; ++s) EXPECT_EQ(f.out[s - 1].first, s);
  EXPECT_EQ(f.window->held(), 0u);
  EXPECT_EQ(f.window->flushes(), 0u);
}

TEST(ReorderWindow, CrossPathArrivalWithUnequalSkewReleasesInSeqOrder) {
  WindowFixture f;
  // Prime per-path latency estimates: path 0 fast (~10 ms), path 1 slow
  // (~40 ms) — a 30 ms skew, as between a loaded and an idle operator.
  f.window->on_packet(media(1, 1, f.sim.now() - Duration::millis(10)), 0);
  // Seq 3 overtakes seq 2 on the fast path; the window must hold it.
  f.window->on_packet(media(3, 3, f.sim.now() - Duration::millis(10)), 0);
  EXPECT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.window->held(), 1u);
  // The straggler lands on the slow path well within the hold window.
  f.sim.run_until(f.sim.now() + Duration::millis(5));
  f.window->on_packet(media(2, 2, f.sim.now() - Duration::millis(40)), 1);
  EXPECT_NEAR(f.window->skew_ms(), 30.0, 1.0);
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[1], (std::pair<std::uint16_t, int>{2, 1}));
  EXPECT_EQ(f.out[2], (std::pair<std::uint16_t, int>{3, 0}));
  EXPECT_EQ(f.window->held(), 0u);
  EXPECT_EQ(f.window->flushes(), 0u);
}

TEST(ReorderWindow, GapTimeoutFlushesHeldPacketsAndLateCopyBypasses) {
  WindowFixture f;
  f.window->on_packet(media(1, 1, f.sim.now()), 0);
  f.window->on_packet(media(3, 3, f.sim.now()), 0);  // gap at seq 2
  EXPECT_EQ(f.window->held(), 1u);
  // Default hold with zero skew is base_hold (30 ms).
  f.sim.run_until(f.sim.now() + Duration::millis(100));
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_EQ(f.out[1].first, 3);
  EXPECT_EQ(f.window->flushes(), 1u);
  // The missing packet finally limps in: delivered immediately, counted late,
  // never re-ordered backwards.
  f.window->on_packet(media(2, 2, f.sim.now()), 1);
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[2].first, 2);
  EXPECT_EQ(f.window->late_packets(), 1u);
}

TEST(ReorderWindow, OverflowFlushReleasesEverythingInOrder) {
  bond::ReorderWindowConfig cfg;
  cfg.max_packets = 8;
  WindowFixture f{cfg};
  f.window->on_packet(media(100, 100, f.sim.now()), 0);
  // Seq 101 never arrives; 8 buffered packets trip the overflow bound.
  for (std::uint16_t s = 102; s <= 109; ++s) {
    f.window->on_packet(media(s, s, f.sim.now()), 0);
  }
  ASSERT_EQ(f.out.size(), 9u);
  for (std::size_t i = 1; i < f.out.size(); ++i) {
    EXPECT_LT(f.out[i - 1].first, f.out[i].first);
  }
  EXPECT_EQ(f.window->held(), 0u);
  EXPECT_EQ(f.window->flushes(), 1u);
}

TEST(ReorderWindow, DuplicateCopiesAcrossPathsSuppressedExactlyOnce) {
  WindowFixture f;
  auto p = media(7, 7, f.sim.now());
  f.window->on_packet(p, 0);
  auto copy = p;
  copy.id = 999999;  // bonded duplicates get fresh descriptor ids
  f.window->on_packet(copy, 1);
  EXPECT_EQ(f.out.size(), 1u);
  EXPECT_EQ(f.window->duplicates_suppressed(), 1u);
}

TEST(ReorderWindow, ParityAndMediaKeysDoNotCollide) {
  WindowFixture f;
  f.window->on_packet(media(5, 0, f.sim.now()), 0);
  net::Packet parity;
  parity.kind = net::PacketKind::kFecParity;
  parity.transport_seq = 5;  // same transport seq as the media packet
  parity.fec_group = 0;
  parity.sent = f.sim.now();
  f.window->on_packet(parity, 1);
  EXPECT_EQ(f.out.size(), 2u);
  EXPECT_EQ(f.window->duplicates_suppressed(), 0u);
}

TEST(ReorderWindow, FlushAllDrainsAroundGaps) {
  WindowFixture f;
  f.window->on_packet(media(1, 1, f.sim.now()), 0);
  f.window->on_packet(media(4, 4, f.sim.now()), 0);
  f.window->on_packet(media(6, 6, f.sim.now()), 1);
  f.window->flush_all();
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[1].first, 4);
  EXPECT_EQ(f.out[2].first, 6);
  EXPECT_EQ(f.window->held(), 0u);
}

// --- AdaptiveFecController ---

TimePoint at_s(double s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(AdaptiveFec, FastAttackOnLossJumpsStraightToPressureRung) {
  bond::AdaptiveFecController ctrl;
  EXPECT_EQ(ctrl.group_size(), 16);
  bond::FecInputs in;
  in.max_loss_ewma = 0.05;  // >= rung-2 threshold
  const auto change = ctrl.update(at_s(1.0), in);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(change->prev_group_size, 16);
  EXPECT_EQ(change->group_size, 8);
  EXPECT_EQ(ctrl.level(), 2);
}

TEST(AdaptiveFec, ArmedHandoverForcesElevatedRung) {
  bond::AdaptiveFecController ctrl;
  bond::FecInputs in;
  in.ho_armed = true;
  const auto change = ctrl.update(at_s(1.0), in);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(change->group_size, 8);  // ho_rung = 2 on the default ladder
}

TEST(AdaptiveFec, ForecastDipAddsOneRung) {
  bond::AdaptiveFecController ctrl;
  bond::FecInputs in;
  in.max_loss_ewma = 0.02;  // rung 1 on its own
  in.capacity_mbps = 10.0;
  in.forecast_mbps = 5.0;  // < 0.7 * capacity: dip
  const auto change = ctrl.update(at_s(1.0), in);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(ctrl.level(), 2);
}

TEST(AdaptiveFec, UnreadyForecastNeverCountsAsDip) {
  bond::AdaptiveFecController ctrl;
  bond::FecInputs in;
  in.capacity_mbps = 10.0;
  in.forecast_mbps = -1.0;  // not ready
  EXPECT_FALSE(ctrl.update(at_s(1.0), in).has_value());
  EXPECT_EQ(ctrl.level(), 0);
}

TEST(AdaptiveFec, SlowReleaseStepsOneRungPerCleanInterval) {
  bond::AdaptiveFecController ctrl;
  bond::FecInputs dirty;
  dirty.max_loss_ewma = 0.2;
  ASSERT_TRUE(ctrl.update(at_s(1.0), dirty).has_value());
  EXPECT_EQ(ctrl.level(), 3);
  bond::FecInputs clean;
  // Too soon: the clean interval has not elapsed.
  EXPECT_FALSE(ctrl.update(at_s(2.0), clean).has_value());
  // One rung per elapsed clean interval, never a cliff.
  auto change = ctrl.update(at_s(4.5), clean);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(ctrl.level(), 2);
  EXPECT_FALSE(ctrl.update(at_s(5.0), clean).has_value());
  change = ctrl.update(at_s(8.0), clean);
  ASSERT_TRUE(change.has_value());
  EXPECT_EQ(ctrl.level(), 1);
}

TEST(AdaptiveFec, RenewedPressureDuringDecayHoldsTheRung) {
  bond::AdaptiveFecController ctrl;
  bond::FecInputs dirty;
  dirty.max_loss_ewma = 0.05;
  ASSERT_TRUE(ctrl.update(at_s(1.0), dirty).has_value());
  // Pressure persists at the same rung: the release clock must keep resetting.
  EXPECT_FALSE(ctrl.update(at_s(4.0), dirty).has_value());
  bond::FecInputs clean;
  EXPECT_FALSE(ctrl.update(at_s(6.5), clean).has_value());  // < 3 s since 4.0
  EXPECT_TRUE(ctrl.update(at_s(7.5), clean).has_value());
}

TEST(AdaptiveFec, RejectsDegenerateLadder) {
  bond::FecControllerConfig cfg;
  cfg.ladder = {16, 1};
  EXPECT_THROW(bond::AdaptiveFecController{cfg}, std::invalid_argument);
  cfg.ladder.clear();
  EXPECT_THROW(bond::AdaptiveFecController{cfg}, std::invalid_argument);
}

// --- FecEncoder mid-stream retune ---

TEST(FecEncoder, ShrinkingGroupSizeMidStreamEmitsParityEarly) {
  auto table = std::make_shared<rtp::FecGroupTable>();
  rtp::FecConfig cfg;
  cfg.group_size = 4;
  cfg.interleave_depth = 1;  // single slot: fills sequentially
  rtp::FecEncoder enc{cfg, table};
  net::Packet a = media(1, 1, TimePoint::origin());
  net::Packet b = media(2, 2, TimePoint::origin());
  EXPECT_FALSE(enc.on_media_packet(a).has_value());
  EXPECT_FALSE(enc.on_media_packet(b).has_value());
  enc.set_group_size(3);
  EXPECT_EQ(enc.group_size(), 3);
  net::Packet c = media(3, 3, TimePoint::origin());
  // The filling group reaches the new (smaller) size and emits immediately.
  const auto parity = enc.on_media_packet(c);
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->kind, net::PacketKind::kFecParity);
  EXPECT_EQ(enc.parity_packets(), 1u);
}

// --- Bonded end-to-end ---

experiment::Scenario bonded_scenario(experiment::Multipath mp) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.multipath = mp;
  s.c2 = true;
  s.seed = 77;
  return s;
}

TEST(BondedSession, SmokeEveryPolicyReportsItsNameAndMovesBytes) {
  struct Case {
    experiment::Multipath mp;
    const char* policy;
    const char* cc_suffix;
  };
  for (const auto& c : {Case{experiment::Multipath::kBondLowLatency,
                             "low-latency", "+bond-ll"},
                        Case{experiment::Multipath::kBondBalanced, "balanced",
                             "+bond-bal"},
                        Case{experiment::Multipath::kBondHighReliability,
                             "high-reliability", "+bond-hr"}}) {
    const auto r = experiment::run_scenario(bonded_scenario(c.mp));
    EXPECT_EQ(r.bond_policy, c.policy);
    EXPECT_NE(r.cc_name.find(c.cc_suffix), std::string::npos) << r.cc_name;
    EXPECT_GT(r.bond_media_bytes, 0u);
    EXPECT_GE(r.bond_airtime_bytes, r.bond_media_bytes);
    EXPECT_FALSE(r.owd_ms.empty());
    EXPECT_GT(r.commands_sent, 0u);
    EXPECT_FALSE(r.command_latency_ms.empty());
  }
}

TEST(BondedSession, HighReliabilityDuplicatesC2WithoutDoubleDelivery) {
  const auto r =
      experiment::run_scenario(bonded_scenario(
          experiment::Multipath::kBondHighReliability));
  // Every command is routed twice (both operators)…
  EXPECT_GT(r.bond_airtime_bytes, r.bond_media_bytes);
  // …but the pilot->UAV channel observes each command at most once.
  EXPECT_LE(r.command_latency_ms.size(), r.commands_sent);
  EXPECT_GT(r.command_latency_ms.size(), 0u);
}

TEST(BondedSession, FecRecoversThroughRlfOnOneOfTwoPaths) {
  auto s = bonded_scenario(experiment::Multipath::kBondHighReliability);
  // The injector hits link A only: one operator takes a radio-link failure
  // mid-run while the other keeps carrying traffic.
  s.faults.rlf(90.0).rlf(200.0);
  const auto r = experiment::run_scenario(s);
  EXPECT_GT(r.bond_fec_recovered, 0u);
  EXPECT_GT(r.bond_path_switches, 0u);
  EXPECT_GT(r.bond_fec_rate_changes, 0u);
  // The stream survives the outages: stalls stay bounded, frames keep flowing.
  EXPECT_FALSE(r.owd_ms.empty());
}

TEST(BondedSession, ReorderFlushesAndSuppressionShowUpUnderBalancedSpray) {
  const auto r = experiment::run_scenario(
      bonded_scenario(experiment::Multipath::kBondBalanced));
  // Balanced spray interleaves two paths, so the window must actually work:
  // keyframe duplication feeds the suppression counter.
  EXPECT_GT(r.bond_duplicates_suppressed, 0u);
}

TEST(BondedCampaign, ByteIdenticalAcrossWorkerCounts) {
  exec::GridAxes axes;
  axes.envs = {experiment::Environment::kRuralP1};
  axes.multipaths = {experiment::Multipath::kBondLowLatency,
                     experiment::Multipath::kBondBalanced,
                     experiment::Multipath::kBondHighReliability};
  axes.fault_presets = {experiment::FaultPreset::kChaos};
  experiment::Scenario base;
  base.cc = pipeline::CcKind::kStatic;
  base.c2 = true;
  const auto cells = exec::expand_grid(axes, base);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].label, "rural-p1-air-static-bond-ll-chaos");

  const exec::CampaignEngine serial{{.jobs = 1}};
  const exec::CampaignEngine wide{{.jobs = 8}};
  const auto a = serial.run_grid(cells, 1, 4242);
  const auto b = wide.run_grid(cells, 1, 4242);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].reports.size(), b.cells[i].reports.size());
    for (std::size_t j = 0; j < a.cells[i].reports.size(); ++j) {
      EXPECT_EQ(pipeline::report_to_json(a.cells[i].reports[j]).dump(),
                pipeline::report_to_json(b.cells[i].reports[j]).dump())
          << a.cells[i].cell.label;
    }
  }
}

}  // namespace
}  // namespace rpv
