#include "cellular/handover.hpp"

#include <gtest/gtest.h>

namespace rpv::cellular {
namespace {

using sim::Duration;
using sim::TimePoint;

HandoverConfig fast_config() {
  HandoverConfig cfg;
  cfg.hysteresis_db = 3.0;
  cfg.time_to_trigger = Duration::millis(200);
  return cfg;
}

HetModel fixed_het() {
  HetConfig cfg;
  cfg.outlier_prob_ground = 0.0;
  cfg.outlier_prob_air = 0.0;
  cfg.bulk_sigma = 1e-6;  // effectively deterministic at the median
  return HetModel{cfg, sim::Rng{1}};
}

std::vector<CellMeasurement> meas(double serving, double neighbour) {
  std::vector<CellMeasurement> m{{1, serving}, {2, neighbour}};
  std::sort(m.begin(), m.end(), [](const auto& a, const auto& b) {
    return a.rsrp_dbm > b.rsrp_dbm;
  });
  return m;
}

TEST(HandoverController, NoTriggerBelowHysteresis) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  for (int i = 0; i < 20; ++i) {
    const auto het = hc.on_measurement(
        TimePoint::from_us(i * 100'000), meas(-80.0, -78.0), 0.0);
    EXPECT_FALSE(het.has_value());  // only 2 dB better: below 3 dB hysteresis
  }
  EXPECT_EQ(hc.serving_cell(), 1u);
}

TEST(HandoverController, TriggersAfterTimeToTrigger) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  std::optional<Duration> het;
  int ticks = 0;
  for (int i = 0; i < 20 && !het; ++i) {
    het = hc.on_measurement(TimePoint::from_us(i * 100'000),
                            meas(-85.0, -78.0), 0.0);
    ++ticks;
  }
  ASSERT_TRUE(het.has_value());
  EXPECT_EQ(hc.serving_cell(), 2u);
  // 200 ms TTT at 100 ms ticks: the condition must persist >= 3 ticks.
  EXPECT_GE(ticks, 3);
}

TEST(HandoverController, TttResetsWhenConditionDrops) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  // Alternate between A3-true and A3-false: the timer must never complete.
  for (int i = 0; i < 40; ++i) {
    const bool strong = (i % 2) == 0;
    const auto het = hc.on_measurement(
        TimePoint::from_us(i * 150'000),
        strong ? meas(-85.0, -78.0) : meas(-80.0, -80.5), 0.0);
    EXPECT_FALSE(het.has_value());
  }
  EXPECT_EQ(hc.serving_cell(), 1u);
}

TEST(HandoverController, InHandoverDuringExecution) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  std::optional<Duration> het;
  TimePoint t;
  for (int i = 0; i < 20 && !het; ++i) {
    t = TimePoint::from_us(i * 100'000);
    het = hc.on_measurement(t, meas(-85.0, -78.0), 0.0);
  }
  ASSERT_TRUE(het.has_value());
  EXPECT_TRUE(hc.in_handover(t + Duration::micros(1)));
  EXPECT_FALSE(hc.in_handover(t + *het + Duration::micros(1)));
}

TEST(HandoverController, NoMeasurementProcessedDuringHandover) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  std::optional<Duration> het;
  TimePoint t;
  for (int i = 0; i < 20 && !het; ++i) {
    t = TimePoint::from_us(i * 100'000);
    het = hc.on_measurement(t, meas(-85.0, -78.0), 0.0);
  }
  ASSERT_TRUE(het.has_value());
  // While executing, further A3 conditions are ignored.
  const auto during = hc.on_measurement(t + Duration::micros(100),
                                        meas(-90.0, -60.0), 0.0);
  EXPECT_FALSE(during.has_value());
}

TEST(HandoverController, PingPongDetected) {
  HandoverConfig cfg = fast_config();
  cfg.ping_pong_window = Duration::seconds(5.0);
  HandoverController hc{cfg, fixed_het(), 1};
  TimePoint t = TimePoint::origin();
  auto drive = [&](double serving, double neighbour,
                   std::uint32_t serving_id) {
    // Serving id decides which measurement is "serving".
    std::vector<CellMeasurement> m{{1, serving_id == 1 ? serving : neighbour},
                                   {2, serving_id == 1 ? neighbour : serving}};
    std::sort(m.begin(), m.end(), [](const auto& a, const auto& b) {
      return a.rsrp_dbm > b.rsrp_dbm;
    });
    std::optional<Duration> het;
    for (int i = 0; i < 30 && !het; ++i) {
      t += Duration::millis(100);
      het = hc.on_measurement(t, m, 0.0);
      if (het) t += *het;
    }
    return het;
  };
  ASSERT_TRUE(drive(-85.0, -78.0, 1).has_value());  // 1 -> 2
  ASSERT_TRUE(drive(-85.0, -78.0, 2).has_value());  // 2 -> 1 quickly: ping-pong
  EXPECT_EQ(hc.log().ping_pong_count(), 1u);
}

TEST(HandoverController, EdgeCapacityFactorWhilePending) {
  HandoverConfig cfg = fast_config();
  cfg.time_to_trigger = Duration::seconds(100.0);  // never completes
  HandoverController hc{cfg, fixed_het(), 1};
  const auto t0 = TimePoint::origin();
  EXPECT_DOUBLE_EQ(hc.capacity_factor(t0), 1.0);
  hc.on_measurement(t0, meas(-85.0, -78.0), 0.0);
  hc.on_measurement(t0 + Duration::millis(100), meas(-85.0, -78.0), 0.0);
  EXPECT_DOUBLE_EQ(hc.capacity_factor(t0 + Duration::millis(150)),
                   cfg.edge_capacity_factor);
}

TEST(HandoverController, LogRecordsSourceAndTarget) {
  HandoverController hc{fast_config(), fixed_het(), 1};
  std::optional<Duration> het;
  for (int i = 0; i < 20 && !het; ++i) {
    het = hc.on_measurement(TimePoint::from_us(i * 100'000),
                            meas(-85.0, -78.0), 0.0);
  }
  ASSERT_EQ(hc.log().count(), 1u);
  EXPECT_EQ(hc.log().events()[0].source_cell, 1u);
  EXPECT_EQ(hc.log().events()[0].target_cell, 2u);
}

TEST(HetModel, BulkMostlyUnderThreshold) {
  HetConfig cfg;
  cfg.outlier_prob_ground = 0.0;
  cfg.outlier_prob_air = 0.0;
  HetModel het{cfg, sim::Rng{3}};
  int under = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (het.sample(0.0) < Duration::millis(49)) ++under;
  }
  // 3GPP successful-HO threshold of 49.5 ms holds for the bulk (paper Fig 4b).
  EXPECT_GT(static_cast<double>(under) / n, 0.9);
}

TEST(HetModel, AirHasHeavierTail) {
  HetModel het{HetConfig{}, sim::Rng{5}};
  int air_outliers = 0, ground_outliers = 0;
  const int n = 20000;
  HetModel het2{HetConfig{}, sim::Rng{5}};
  for (int i = 0; i < n; ++i) {
    if (het.sample(1.0) > Duration::millis(100)) ++air_outliers;
    if (het2.sample(0.0) > Duration::millis(100)) ++ground_outliers;
  }
  EXPECT_GT(air_outliers, 2 * ground_outliers);
}

TEST(HetModel, CappedAtConfiguredMax) {
  HetConfig cfg;
  cfg.outlier_prob_air = 1.0;
  cfg.outlier_median_ms = 5000.0;
  cfg.max_het_ms = 4000.0;  // the paper's observed ceiling
  HetModel het{cfg, sim::Rng{7}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(het.sample(1.0), Duration::millis(4000));
  }
}

TEST(HetModel, AirborneFractionInterpolatesOutlierRate) {
  HetConfig cfg;
  cfg.outlier_prob_ground = 0.0;
  cfg.outlier_prob_air = 1.0;
  cfg.outlier_median_ms = 1000.0;
  HetModel het{cfg, sim::Rng{9}};
  int mid_outliers = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (het.sample(0.5) > Duration::millis(200)) ++mid_outliers;
  }
  EXPECT_NEAR(static_cast<double>(mid_outliers) / n, 0.5, 0.05);
}

}  // namespace
}  // namespace rpv::cellular
