#include "net/packet.hpp"
#include "net/wan_path.hpp"

#include <gtest/gtest.h>

namespace rpv::net {
namespace {

TEST(WanPath, DelayNeverBelowBase) {
  WanConfig cfg;
  cfg.base_owd = sim::Duration::millis(9);
  WanPath wan{cfg, sim::Rng{1}};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(wan.sample_delay(), cfg.base_owd);
  }
}

TEST(WanPath, JitterIsSmall) {
  WanConfig cfg;
  WanPath wan{cfg, sim::Rng{2}};
  double max_ms = 0.0;
  for (int i = 0; i < 10000; ++i) {
    max_ms = std::max(max_ms, wan.sample_delay().ms());
  }
  EXPECT_LT(max_ms, cfg.base_owd.ms() + 10.0 * cfg.jitter.ms());
}

TEST(WanPath, ZeroJitterIsDeterministic) {
  WanConfig cfg;
  cfg.jitter = sim::Duration::zero();
  WanPath wan{cfg, sim::Rng{3}};
  EXPECT_EQ(wan.sample_delay(), cfg.base_owd);
}

TEST(WanPath, LossFollowsProbability) {
  WanConfig cfg;
  cfg.loss_probability = 0.1;
  WanPath wan{cfg, sim::Rng{4}};
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) drops += wan.drops_packet() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
}

TEST(WanPath, DefaultLossNegligible) {
  WanPath wan{WanConfig{}, sim::Rng{5}};
  int drops = 0;
  for (int i = 0; i < 100000; ++i) drops += wan.drops_packet() ? 1 : 0;
  EXPECT_LE(drops, 2);
}

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_EQ(p.kind, PacketKind::kRtpVideo);
  EXPECT_EQ(p.size_bytes, 0u);
  EXPECT_FALSE(p.frame_last);
}

}  // namespace
}  // namespace rpv::net
