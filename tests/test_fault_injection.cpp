// Fault-injection subsystem tests: schedule validation and determinism,
// RLF / RRC re-establishment, feedback-silence watchdog, PLI keyframe
// recovery with exponential backoff, multipath failover, and a chaos
// property sweep (random schedules x all CCs: termination + packet
// conservation).
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "fault/backoff.hpp"
#include "fault/fault_schedule.hpp"
#include "pipeline/multipath_session.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

// --- FaultSchedule ---

TEST(FaultSchedule, RejectsInvalidEvents) {
  fault::FaultSchedule s;
  // Non-RLF events need a positive duration.
  EXPECT_THROW(s.feedback_blackout(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(s.wan_outage(10.0, -1.0), std::invalid_argument);
  // Collapse magnitude is a residual fraction in [0, 1).
  EXPECT_THROW(s.capacity_collapse(10.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(s.capacity_collapse(10.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(FaultSchedule, KeepsEventsSortedByTime) {
  fault::FaultSchedule s;
  s.wan_outage(120.0, 1.0).rlf(30.0).feedback_blackout(60.0, 2.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_LT(s.events()[0].at, s.events()[1].at);
  EXPECT_LT(s.events()[1].at, s.events()[2].at);
  EXPECT_EQ(s.events()[0].kind, fault::FaultKind::kRlf);
}

TEST(FaultSchedule, RandomIsDeterministicPerSeed) {
  const auto horizon = Duration::seconds(300.0);
  const auto a = fault::FaultSchedule::random(7, horizon);
  const auto b = fault::FaultSchedule::random(7, horizon);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
  }
  const auto c = fault::FaultSchedule::random(8, horizon);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

// --- Backoff ---

TEST(Backoff, DoublesUpToCapAndKeepsRetrying) {
  fault::Backoff b{Duration::millis(100), 8};
  EXPECT_EQ(b.next(), Duration::millis(100));
  EXPECT_EQ(b.next(), Duration::millis(200));
  EXPECT_EQ(b.next(), Duration::millis(400));
  EXPECT_EQ(b.next(), Duration::millis(800));
  // Capped: the interval stops growing but never stops being offered.
  EXPECT_EQ(b.next(), Duration::millis(800));
  EXPECT_EQ(b.next(), Duration::millis(800));
  b.reset();
  EXPECT_EQ(b.next(), Duration::millis(100));
}

// --- Deterministic replay ---

TEST(FaultInjection, SameSeedAndScheduleReproduceRun) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 401;
  s.resilience = true;
  s.model_reference_loss = true;
  s.faults.rlf(50.0).feedback_blackout(120.0, 2.0).wan_outage(200.0, 1.5);
  const auto a = run_scenario(s);
  const auto b = run_scenario(s);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.frames_played, b.frames_played);
  EXPECT_EQ(a.stall_count, b.stall_count);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.watchdog_events, b.watchdog_events);
  EXPECT_EQ(a.pli_sent, b.pli_sent);
  EXPECT_EQ(a.media_losses, b.media_losses);
  EXPECT_EQ(a.wan_drops, b.wan_drops);
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t i = 0; i < a.fault_outcomes.size(); ++i) {
    EXPECT_EQ(a.fault_outcomes[i].effective_duration,
              b.fault_outcomes[i].effective_duration);
    EXPECT_DOUBLE_EQ(a.fault_outcomes[i].recovery_ms,
                     b.fault_outcomes[i].recovery_ms);
  }
  EXPECT_EQ(a.ssim_samples, b.ssim_samples);
}

// --- RLF / RRC re-establishment ---

TEST(FaultInjection, RlfEmitsReestablishmentAndBoundsHet) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 402;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  cfg.faults.rlf(60.0).rlf(180.0);
  pipeline::Session session{cfg, std::move(layout), &traj, "rlf-test"};
  const auto r = session.run();

  EXPECT_EQ(r.faults_injected, 2u);
  const auto& rrc = session.link().rrc_log();
  EXPECT_EQ(rrc.count_of(
                cellular::RrcMessageType::kConnectionReestablishmentRequest),
            2u);
  EXPECT_EQ(rrc.count_of(
                cellular::RrcMessageType::kConnectionReestablishmentComplete),
            2u);
  // Satellite: RRC timestamps stay monotone even with injected faults.
  EXPECT_TRUE(rrc.is_monotonic());

  // Each RLF appears in the handover log and its interruption respects the
  // same max_het_ms clamp as ordinary handovers.
  EXPECT_GE(r.handovers.count(), 2u);
  for (const auto& o : r.fault_outcomes) {
    EXPECT_GT(o.effective_duration, Duration::zero());
    EXPECT_LE(o.effective_duration.ms(), cfg.link.het.max_het_ms);
    // RLF = T310 expiry + re-establishment: never shorter than T310.
    EXPECT_GE(o.effective_duration.ms(), cfg.link.het.rlf_t310_ms);
  }
}

// --- Feedback watchdog ---

TEST(FaultInjection, WatchdogFiresExactlyOncePerBlackout) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;  // no handover-induced silence
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 403;
  s.resilience = true;
  s.faults.feedback_blackout(60.0, 2.0).feedback_blackout(200.0, 3.0);
  const auto r = run_scenario(s);
  EXPECT_EQ(r.watchdog_events, 2u);
  EXPECT_GT(r.fault_drops, 0u);  // the blackout really dropped feedback
  EXPECT_GT(r.frames_played, 1000u);
}

TEST(FaultInjection, WatchdogNeverFiresWithoutFaults) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 404;
  s.resilience = true;
  const auto r = run_scenario(s);
  EXPECT_EQ(r.watchdog_events, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
}

// --- PLI keyframe recovery ---

TEST(FaultInjection, OutageTriggersPliAndForcedKeyframes) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 405;
  s.resilience = true;
  s.model_reference_loss = true;
  s.faults.wan_outage(100.0, 2.0);
  const auto r = run_scenario(s);
  EXPECT_GE(r.pli_sent, 1u);
  EXPECT_GE(r.keyframes_forced, 1u);
  ASSERT_EQ(r.fault_outcomes.size(), 1u);
  // The pipeline recovered before the run ended.
  EXPECT_GE(r.fault_outcomes[0].recovery_ms, 0.0);
}

// --- Direct uplink blackout hook ---

TEST(FaultInjection, UplinkBlackoutDropsMediaAndConserves) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 406;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::Session session{cfg, std::move(layout), &traj, "ul-blackout"};
  session.simulator().schedule_at(TimePoint::from_us(90'000'000), [&] {
    session.link().inject_uplink_blackout(Duration::seconds(1.0));
  });
  const auto r = session.run();
  EXPECT_GT(session.link().fault_drops(), 0u);
  // Uplink-blackout drops route through the loss callback, so accounting
  // still closes: sent = received + media losses + WAN drops + in flight.
  EXPECT_GE(r.packets_in_flight, 0);
  EXPECT_EQ(r.packets_sent, r.packets_received + r.media_losses +
                                r.wan_drops +
                                static_cast<std::uint64_t>(r.packets_in_flight));
}

// --- Multipath failover ---

TEST(FaultInjection, FailoverSwitchesToSecondaryDuringRlf) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 407;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout_a = experiment::make_layout(s, rng);
  auto layout_b = cellular::make_rural_layout_p2(rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  cfg.faults.rlf(60.0);
  pipeline::MultipathSession session{cfg,
                                     std::move(layout_a),
                                     std::move(layout_b),
                                     &traj,
                                     "failover-test",
                                     pipeline::MultipathMode::kFailover};
  const auto r = session.run();
  // The RLF takes the primary down for >1 s (T310), so the sender switched
  // to the secondary and back: at least two active-link changes.
  EXPECT_GE(session.failover_events(), 2u);
  EXPECT_EQ(r.failover_events, session.failover_events());
  EXPECT_GT(r.frames_played, 1000u);
  EXPECT_EQ(r.cc_name, "gcc+mpfail");
}

// --- Chaos property sweep ---

TEST(FaultInjection, ChaosSchedulesTerminateAndConservePackets) {
  const pipeline::CcKind ccs[] = {pipeline::CcKind::kStatic,
                                  pipeline::CcKind::kGcc,
                                  pipeline::CcKind::kScream};
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto schedule = fault::FaultSchedule::random(
        seed, Duration::seconds(300.0), /*mean_gap_sec=*/40.0);
    ASSERT_FALSE(schedule.empty());
    for (const auto cc : ccs) {
      experiment::Scenario s;
      s.env = experiment::Environment::kRuralP1;
      s.mobility = experiment::Mobility::kAir;
      s.cc = cc;
      s.seed = 500 + seed;
      s.resilience = true;
      s.model_reference_loss = true;
      s.faults = schedule;
      const auto r = run_scenario(s);  // termination == this returns
      EXPECT_EQ(r.faults_injected, schedule.size());
      EXPECT_GT(r.frames_played, 0u);
      EXPECT_GE(r.packets_in_flight, 0)
          << pipeline::cc_name(cc) << " seed " << seed;
      EXPECT_EQ(r.packets_sent,
                r.packets_received + r.media_losses + r.wan_drops +
                    static_cast<std::uint64_t>(r.packets_in_flight))
          << pipeline::cc_name(cc) << " seed " << seed;
      // In-flight at drain is a tail, not a leak.
      EXPECT_LT(static_cast<std::uint64_t>(r.packets_in_flight),
                r.packets_sent / 10 + 1000);
    }
  }
}

// --- Validation satellite ---

TEST(Validation, TrajectoryRejectsUnsortedWaypoints) {
  std::vector<geo::Waypoint> pts;
  pts.push_back({TimePoint::from_us(2'000'000), {0.0, 0.0, 0.0}});
  pts.push_back({TimePoint::from_us(1'000'000), {1.0, 0.0, 0.0}});
  EXPECT_THROW(geo::Trajectory{std::move(pts)}, std::invalid_argument);
}

TEST(Validation, SessionRejectsBadConfig) {
  experiment::Scenario s;
  s.mobility = experiment::Mobility::kStatic;
  s.cc = pipeline::CcKind::kStatic;
  sim::Rng rng{42};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  cfg.static_bitrate_bps = 0.0;
  EXPECT_THROW(
      (pipeline::Session{cfg, std::move(layout), &traj, "bad-config"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace rpv
