// Tests for rpv::obs — the unified event-stream observability layer: bus
// masking, the bounded ring recorder, the JSONL timeline format, the metrics
// registry, config validation, and the determinism guarantee (recordings are
// byte-identical regardless of --jobs).
#include <gtest/gtest.h>

#include "exec/campaign_engine.hpp"
#include "experiment/scenario.hpp"
#include "obs/event.hpp"
#include "obs/event_json.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/recorder.hpp"
#include "pipeline/report_json.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

obs::Event make_event(std::int64_t t_us, obs::Component c, obs::EventKind k,
                      obs::Payload payload = {}) {
  obs::Event e;
  e.t = TimePoint::from_us(t_us);
  e.component = c;
  e.kind = k;
  e.payload = std::move(payload);
  return e;
}

// --- EventBus masking ---

TEST(EventBus, UnwantedKindsAreFreeAndUncounted) {
  obs::EventBus bus;
  // No sinks: nothing is wanted, publish is a no-op and mints no seq.
  EXPECT_FALSE(bus.wants(obs::EventKind::kStall));
  bus.publish(obs::Component::kReceiver, obs::EventKind::kStall,
              TimePoint::from_us(1), obs::StallPayload{500.0});
  EXPECT_EQ(bus.published(), 0u);

  obs::NullSink null;
  bus.subscribe(&null);  // mask 0: still nothing wanted
  EXPECT_FALSE(bus.wants(obs::EventKind::kStall));

  // A sink interested only in stalls makes exactly that kind hot.
  obs::FunctionSink stalls{obs::kind_bit(obs::EventKind::kStall),
                           [](const obs::Event&) {}};
  bus.subscribe(&stalls);
  EXPECT_TRUE(bus.wants(obs::EventKind::kStall));
  EXPECT_FALSE(bus.wants(obs::EventKind::kHandoverStart));
  bus.publish(obs::Component::kReceiver, obs::EventKind::kStall,
              TimePoint::from_us(2), obs::StallPayload{500.0});
  bus.publish(obs::Component::kCellular, obs::EventKind::kHandoverStart,
              TimePoint::from_us(3), obs::HandoverPayload{1, 2, 100});
  EXPECT_EQ(bus.published(), 1u);
}

TEST(EventBus, SeqIsMonotoneInPublishOrder) {
  obs::EventBus bus;
  std::vector<std::uint64_t> seqs;
  obs::FunctionSink all{obs::kAllKinds,
                        [&](const obs::Event& e) { seqs.push_back(e.seq); }};
  bus.subscribe(&all);
  for (int i = 0; i < 5; ++i) {
    bus.publish(obs::Component::kSession, obs::EventKind::kTargetRate,
                TimePoint::from_us(i), obs::RatePayload{1e6 * i});
  }
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

// --- RingBufferRecorder ---

TEST(RingBufferRecorder, DropsOldestOnOverflow) {
  obs::RingBufferRecorder rec{/*capacity=*/4, obs::kAllKinds};
  obs::EventBus bus;
  bus.subscribe(&rec);
  for (int i = 0; i < 6; ++i) {
    bus.publish(obs::Component::kCc, obs::EventKind::kTargetRate,
                TimePoint::from_us(i * 1000), obs::RatePayload{1e6 * i});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest first, and the two oldest events (seq 0, 1) were evicted.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, i + 2);
  }
}

TEST(RingBufferRecorder, DefaultMaskExcludesPacketFirehose) {
  obs::RingBufferRecorder rec;  // kTimelineKinds
  obs::EventBus bus;
  bus.subscribe(&rec);
  EXPECT_FALSE(bus.wants(obs::EventKind::kPacketSent));
  EXPECT_FALSE(bus.wants(obs::EventKind::kPacketReceived));
  EXPECT_FALSE(bus.wants(obs::EventKind::kQueueEnqueue));
  EXPECT_TRUE(bus.wants(obs::EventKind::kPacketLost));
  EXPECT_TRUE(bus.wants(obs::EventKind::kHandoverStart));
}

// --- JSONL round-trip ---

TEST(EventJson, RoundTripsEveryPayloadType) {
  std::vector<obs::Event> events;
  events.push_back(make_event(
      1000, obs::Component::kCellular, obs::EventKind::kLinkMeasurement,
      obs::MeasurementPayload{3, -91.25, 5, -95.5, 12.5, 42.0, false, true,
                              120000}));
  events.push_back(make_event(2000, obs::Component::kCellular,
                              obs::EventKind::kHandoverStart,
                              obs::HandoverPayload{3, 5, 120000}));
  events.push_back(make_event(3000, obs::Component::kLinkQueue,
                              obs::EventKind::kQueueDrop,
                              obs::QueuePayload{77, 1200, 250000, 208, 1}));
  events.push_back(make_event(4000, obs::Component::kCc,
                              obs::EventKind::kTargetRate,
                              obs::RatePayload{8.5e6}));
  events.push_back(make_event(5000, obs::Component::kCc,
                              obs::EventKind::kOveruse,
                              obs::SignalPayload{1}));
  events.push_back(make_event(6000, obs::Component::kSender,
                              obs::EventKind::kFrameEncoded,
                              obs::FramePayload{42, 31000, true, false}));
  events.push_back(make_event(
      7000, obs::Component::kReceiver, obs::EventKind::kPacketReceived,
      obs::PacketPayload{9001, 1, 1200, 42, 777, 48.25}));
  events.push_back(make_event(8000, obs::Component::kReceiver,
                              obs::EventKind::kStall,
                              obs::StallPayload{512.5}));
  events.push_back(make_event(9000, obs::Component::kFault,
                              obs::EventKind::kFaultInjected,
                              obs::FaultPayload{2, 500000, 0.1}));
  events.push_back(
      make_event(10000, obs::Component::kSession, obs::EventKind::kRlf));
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i;

  const auto text = obs::to_jsonl(events);
  const auto parsed = obs::read_jsonl(text);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i], events[i]) << "event " << i;
  }
  // The writer is canonical: re-serializing reproduces the bytes.
  EXPECT_EQ(obs::to_jsonl(parsed), text);
}

TEST(EventJson, RejectsMalformedLinesWithLineNumber) {
  try {
    (void)obs::read_jsonl("{\"t_us\":1,\"seq\":0,\"component\":\"cellular\","
                          "\"kind\":\"rlf\"}\nnot json\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(EventJson, NamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kComponentCount; ++i) {
    const auto c = static_cast<obs::Component>(i);
    const auto back = obs::component_from_name(obs::component_name(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
    const auto k = static_cast<obs::EventKind>(i);
    const auto back = obs::event_kind_from_name(obs::event_kind_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(obs::component_from_name("bogus").has_value());
  EXPECT_FALSE(obs::event_kind_from_name("bogus").has_value());
}

// --- Histogram / MetricsRegistry ---

TEST(Histogram, BucketEdgesAreHalfOpen) {
  obs::Histogram h{"test_ms", {10.0, 20.0}};
  ASSERT_EQ(h.counts.size(), 3u);
  h.add(9.999);   // < 10        -> bucket 0
  h.add(10.0);    // on the edge -> bucket 1
  h.add(19.999);  //             -> bucket 1
  h.add(20.0);    // on the edge -> bucket 2 (overflow)
  h.add(1e9);     //             -> bucket 2
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 2u);
  EXPECT_EQ(h.total, 5u);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW((obs::Histogram{"bad", {}}), std::invalid_argument);
  EXPECT_THROW((obs::Histogram{"bad", {5.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW((obs::Histogram{"bad", {5.0, 1.0}}), std::invalid_argument);
}

TEST(MetricsRegistry, CountsAndFeedsHistograms) {
  obs::MetricsRegistry reg;
  obs::EventBus bus;
  bus.subscribe(&reg);
  bus.publish(obs::Component::kCellular, obs::EventKind::kHandoverStart,
              TimePoint::from_us(1000),
              obs::HandoverPayload{1, 2, /*het_us=*/150000});
  bus.publish(obs::Component::kCellular, obs::EventKind::kHandoverStart,
              TimePoint::from_us(2000),
              obs::HandoverPayload{2, 3, /*het_us=*/900000});
  bus.publish(obs::Component::kReceiver, obs::EventKind::kStall,
              TimePoint::from_us(3000), obs::StallPayload{450.0});
  EXPECT_EQ(reg.count(obs::Component::kCellular,
                      obs::EventKind::kHandoverStart),
            2u);
  EXPECT_EQ(reg.count(obs::Component::kReceiver, obs::EventKind::kStall), 1u);

  const auto summary = reg.summary();
  ASSERT_EQ(summary.counters.size(), 2u);
  // Component-major order: cellular before receiver.
  EXPECT_EQ(summary.counters[0].name, "cellular/handover-start");
  EXPECT_EQ(summary.counters[0].value, 2u);
  EXPECT_EQ(summary.counters[1].name, "receiver/stall");

  const obs::Histogram* het = nullptr;
  const obs::Histogram* stall = nullptr;
  for (const auto& h : summary.histograms) {
    if (h.name == "het_ms") het = &h;
    if (h.name == "stall_ms") stall = &h;
  }
  ASSERT_NE(het, nullptr);
  ASSERT_NE(stall, nullptr);
  EXPECT_EQ(het->total, 2u);
  EXPECT_EQ(stall->total, 1u);
}

// --- SessionConfig::validate ---

TEST(SessionConfigValidate, RejectsBadConfigs) {
  pipeline::SessionConfig ok;
  EXPECT_NO_THROW(ok.validate());

  pipeline::SessionConfig bad = ok;
  bad.sender.frame_interval = Duration::zero();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = ok;
  bad.static_bitrate_bps = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = ok;
  bad.fec_group_size = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = ok;
  bad.obs.ring_capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = ok;
  bad.c2.enabled = true;
  bad.c2.command_interval = Duration::zero();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- End-to-end: observed sessions ---

experiment::Scenario quick_scenario(std::uint64_t seed) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = seed;
  s.observe = true;
  return s;
}

TEST(ObsSession, DisabledSessionRecordsNothing) {
  auto s = quick_scenario(71);
  s.observe = false;
  const auto r = experiment::run_scenario(s);
  EXPECT_FALSE(r.obs_enabled);
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.obs_events_recorded, 0u);
  EXPECT_TRUE(r.obs_metrics.counters.empty());
}

TEST(ObsSession, ObservedSessionRecordsTimeline) {
  const auto r = experiment::run_scenario(quick_scenario(72));
  EXPECT_TRUE(r.obs_enabled);
  ASSERT_FALSE(r.events.empty());
  EXPECT_EQ(r.obs_events_recorded, r.events.size() + r.obs_events_dropped);
  // Link measurements tick throughout the run.
  bool saw_measurement = false;
  sim::TimePoint last = sim::TimePoint::origin();
  for (const auto& e : r.events) {
    if (e.kind == obs::EventKind::kLinkMeasurement) saw_measurement = true;
    EXPECT_GE(e.t, last);  // (t, seq)-ordered
    last = e.t;
  }
  EXPECT_TRUE(saw_measurement);
  EXPECT_FALSE(r.obs_metrics.counters.empty());
}

TEST(ObsSession, ReportJsonRoundTripsObsBlock) {
  const auto r = experiment::run_scenario(quick_scenario(73));
  const auto doc = pipeline::report_to_json(r);
  const auto text = doc.dump(-1);
  const auto back = pipeline::report_from_json(json::parse(text));
  EXPECT_EQ(back.obs_enabled, r.obs_enabled);
  EXPECT_EQ(back.obs_events_recorded, r.obs_events_recorded);
  EXPECT_EQ(back.obs_events_dropped, r.obs_events_dropped);
  EXPECT_EQ(back.obs_metrics, r.obs_metrics);
  // Canonical serialization: a reload re-dumps byte-identically.
  EXPECT_EQ(pipeline::report_to_json(back).dump(-1), text);
}

TEST(ObsSession, RecordingIsIdenticalAcrossJobCounts) {
  std::vector<experiment::Scenario> scenarios;
  for (std::uint64_t i = 0; i < 3; ++i) {
    scenarios.push_back(quick_scenario(80 + i * 7919));
  }
  const exec::CampaignEngine serial{{.jobs = 1}};
  const exec::CampaignEngine parallel{{.jobs = 8}};
  const auto a = serial.run_scenarios(scenarios);
  const auto b = parallel.run_scenarios(scenarios);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(obs::to_jsonl(a[i].events), obs::to_jsonl(b[i].events))
        << "events.jsonl differs for scenario " << i;
    EXPECT_EQ(pipeline::report_to_json(a[i]).dump(-1),
              pipeline::report_to_json(b[i]).dump(-1))
        << "report differs for scenario " << i;
  }
}

}  // namespace
}  // namespace rpv
