#include "pipeline/video_receiver.hpp"

#include <gtest/gtest.h>

#include "rtp/packetizer.hpp"

namespace rpv::pipeline {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

struct Fixture {
  Simulator sim;
  FrameTable table;
  std::vector<rtp::FeedbackReport> feedback;
  std::vector<std::size_t> feedback_sizes;
  std::unique_ptr<VideoReceiver> receiver;
  rtp::Packetizer packetizer;

  explicit Fixture(ReceiverConfig cfg = {}) {
    receiver = std::make_unique<VideoReceiver>(
        sim, cfg, table,
        [this](const rtp::FeedbackReport& r, std::size_t size) {
          feedback.push_back(r);
          feedback_sizes.push_back(size);
        },
        sim::Rng{1});
  }

  void deliver_frame(std::uint32_t id, std::size_t bytes, TimePoint capture,
                     TimePoint arrival) {
    video::Frame f;
    f.id = id;
    f.size_bytes = bytes;
    f.capture_time = capture;
    f.encoded_bitrate_bps = 8e6;
    table.put(f);
    for (auto& p : packetizer.packetize(f)) {
      p.enqueued = capture;
      p.received = arrival;
      sim.schedule_at(arrival, [this, p] { receiver->on_packet(p); });
    }
  }
};

TEST(VideoReceiver, FramesReachThePlayer) {
  Fixture f;
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(5.0));
  for (std::uint32_t i = 0; i < 60; ++i) {
    f.deliver_frame(i, 3000, TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  f.receiver->finish();
  EXPECT_EQ(f.receiver->player().frames_played(), 60u);
}

TEST(VideoReceiver, OwdRecordedPerPacket) {
  Fixture f;
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(2.0));
  f.deliver_frame(0, 2400, TimePoint::origin(), TimePoint::from_us(45'000));
  f.sim.run_all();
  ASSERT_GE(f.receiver->owd_ms().count(), 2u);
  EXPECT_NEAR(f.receiver->owd_ms().samples().front().value, 45.0, 0.1);
}

TEST(VideoReceiver, TwccFeedbackGenerated) {
  ReceiverConfig cfg;
  cfg.feedback = FeedbackKind::kTwcc;
  Fixture f{cfg};
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(2.0));
  for (std::uint32_t i = 0; i < 30; ++i) {
    f.deliver_frame(i, 2400, TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  EXPECT_GT(f.feedback.size(), 10u);
  std::size_t acked = 0;
  for (const auto& r : f.feedback) acked += r.results.size();
  EXPECT_EQ(acked, 60u);  // 2 packets per frame, every packet acked once
}

TEST(VideoReceiver, Rfc8888FeedbackFasterClock) {
  ReceiverConfig cfg;
  cfg.feedback = FeedbackKind::kRfc8888;
  Fixture f{cfg};
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(1.0));
  f.deliver_frame(0, 2400, TimePoint::origin(), TimePoint::from_us(40'000));
  f.sim.run_all();
  // 10 ms cadence from the first packet: ~96 reports in the second.
  EXPECT_GT(f.feedback.size(), 50u);
}

TEST(VideoReceiver, NoFeedbackWhenDisabled) {
  ReceiverConfig cfg;
  cfg.feedback = FeedbackKind::kNone;
  Fixture f{cfg};
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(1.0));
  f.deliver_frame(0, 2400, TimePoint::origin(), TimePoint::from_us(40'000));
  f.sim.run_all();
  EXPECT_TRUE(f.feedback.empty());
}

TEST(VideoReceiver, FeedbackSizeScalesWithResults) {
  ReceiverConfig cfg;
  cfg.feedback = FeedbackKind::kTwcc;
  Fixture f{cfg};
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(1.0));
  f.deliver_frame(0, 12000, TimePoint::origin(), TimePoint::from_us(40'000));
  f.sim.run_all();
  ASSERT_FALSE(f.feedback.empty());
  EXPECT_EQ(f.feedback_sizes[0], cfg.feedback_base_bytes +
                                     cfg.feedback_per_result_bytes *
                                         f.feedback[0].results.size());
}

TEST(VideoReceiver, GoodputWindowsTrackDeliveredBytes) {
  Fixture f;
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(5.0));
  // ~1 Mbps of delivered media for 5 s.
  for (int i = 0; i < 150; ++i) {
    f.deliver_frame(static_cast<std::uint32_t>(i), 4167,
                    TimePoint::from_us(i * 33'333),
                    TimePoint::from_us(i * 33'333 + 40'000));
  }
  f.sim.run_all();
  const auto values = f.receiver->goodput_mbps().values();
  ASSERT_GE(values.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(values[i], 1.0, 0.3);
  }
}

TEST(VideoReceiver, CorruptedFramesCounted) {
  Fixture f;
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(3.0));
  // Frame 0 loses a packet (drop one manually).
  video::Frame fr;
  fr.id = 0;
  fr.size_bytes = 3600;
  fr.capture_time = TimePoint::origin();
  f.table.put(fr);
  auto packets = f.packetizer.packetize(fr);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i == 1) continue;
    auto p = packets[i];
    p.enqueued = fr.capture_time;
    f.sim.schedule_at(TimePoint::from_us(40'000), [&f, p] { f.receiver->on_packet(p); });
  }
  // Frame 1 complete provides evidence.
  f.deliver_frame(1, 2400, TimePoint::from_us(33'333), TimePoint::from_us(73'333));
  f.sim.run_all();
  EXPECT_EQ(f.receiver->corrupted_frames(), 1u);
}

TEST(VideoReceiver, PacketCounters) {
  Fixture f;
  f.receiver->start(TimePoint::origin(), TimePoint::origin() + Duration::seconds(1.0));
  f.deliver_frame(0, 2400, TimePoint::origin(), TimePoint::from_us(40'000));
  f.sim.run_all();
  EXPECT_EQ(f.receiver->packets_received(), 2u);
  EXPECT_GT(f.receiver->media_bytes(), 2300u);
}

}  // namespace
}  // namespace rpv::pipeline
