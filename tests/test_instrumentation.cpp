// Tests for the data-collection fidelity pieces: the RRC message log
// (QCSuper analogue), the obs-layer packet ledger (tcpdump analogue),
// bootstrap confidence intervals, and the RP QoE score.
#include <gtest/gtest.h>

#include "cellular/rrc_log.hpp"
#include "experiment/scenario.hpp"
#include "metrics/bootstrap.hpp"
#include "obs/packet_log.hpp"
#include "pipeline/multipath_session.hpp"
#include "pipeline/qoe.hpp"

namespace rpv {
namespace {

using sim::Duration;
using sim::TimePoint;

// --- RrcLog ---

TEST(RrcLog, MessageNames) {
  EXPECT_EQ(cellular::rrc_message_name(
                cellular::RrcMessageType::kConnectionReconfiguration),
            "RRCConnectionReconfiguration");
  EXPECT_EQ(cellular::rrc_message_name(
                cellular::RrcMessageType::kConnectionReconfigurationComplete),
            "RRCConnectionReconfigurationComplete");
}

TEST(RrcLog, DerivesHetFromMessagePairs) {
  cellular::RrcLog log;
  log.record(TimePoint::from_us(1'000'000),
             cellular::RrcMessageType::kConnectionReconfiguration, 1);
  log.record(TimePoint::from_us(1'030'000),
             cellular::RrcMessageType::kConnectionReconfigurationComplete, 2);
  log.record(TimePoint::from_us(5'000'000),
             cellular::RrcMessageType::kConnectionReconfiguration, 2);
  log.record(TimePoint::from_us(5'900'000),
             cellular::RrcMessageType::kConnectionReconfigurationComplete, 3);
  const auto het = log.derive_het_ms();
  ASSERT_EQ(het.size(), 2u);
  EXPECT_DOUBLE_EQ(het[0], 30.0);
  EXPECT_DOUBLE_EQ(het[1], 900.0);
}

TEST(RrcLog, CountsByType) {
  cellular::RrcLog log;
  log.record(TimePoint::origin(), cellular::RrcMessageType::kMeasurementReport, 1);
  log.record(TimePoint::origin(), cellular::RrcMessageType::kMeasurementReport, 2);
  log.record(TimePoint::origin(),
             cellular::RrcMessageType::kConnectionReconfiguration, 1);
  EXPECT_EQ(log.count_of(cellular::RrcMessageType::kMeasurementReport), 2u);
  EXPECT_EQ(log.count(), 3u);
}

TEST(RrcLog, SessionRrcMatchesHandoverLog) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 55;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::Session session{cfg, std::move(layout), &traj, "rrc-test"};
  session.run();
  const auto& rrc = session.link().rrc_log();
  const auto& ho = session.link().handover_log();
  // One Reconfiguration per handover, and the message-derived HETs match
  // the handover log's values.
  EXPECT_EQ(rrc.count_of(cellular::RrcMessageType::kConnectionReconfiguration),
            ho.count());
  const auto derived = rrc.derive_het_ms();
  const auto logged = ho.het_ms();
  ASSERT_EQ(derived.size(), logged.size());
  for (std::size_t i = 0; i < derived.size(); ++i) {
    EXPECT_NEAR(derived[i], logged[i], 0.01);
  }
}

// --- PacketLog (obs-layer packet ledger) ---

TEST(PacketLog, RecordsDeliveriesAndLosses) {
  obs::PacketLog log;
  obs::EventBus bus;
  bus.subscribe(&log);
  obs::PacketPayload p;
  p.id = 1;
  p.size_bytes = 1000;
  p.owd_ms = 40.0;
  bus.publish(obs::Component::kReceiver, obs::EventKind::kPacketReceived,
              TimePoint::from_us(40'100), p);
  p.id = 2;
  bus.publish(obs::Component::kCellular, obs::EventKind::kPacketLost,
              TimePoint::from_us(41'000), p);
  EXPECT_EQ(log.count(), 2u);
  EXPECT_EQ(log.lost_count(), 1u);
  EXPECT_FALSE(log.records()[0].lost);
  EXPECT_DOUBLE_EQ(log.records()[0].owd_ms, 40.0);
  EXPECT_TRUE(log.records()[1].lost);
}

TEST(PacketLog, BoundedMemory) {
  obs::PacketLog log{10};
  obs::EventBus bus;
  bus.subscribe(&log);
  obs::PacketPayload p;
  for (std::uint64_t i = 0; i < 20; ++i) {
    p.id = i;
    bus.publish(obs::Component::kReceiver, obs::EventKind::kPacketReceived,
                TimePoint::from_us(100 * i), p);
  }
  EXPECT_EQ(log.count(), 10u);
  EXPECT_EQ(log.dropped_records(), 10u);
}

TEST(PacketLog, SessionCaptureConsistentWithCounters) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 56;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout = experiment::make_layout(s, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  cfg.obs.capture_packets = true;
  pipeline::Session session{cfg, std::move(layout), &traj, "cap-test"};
  const auto r = session.run();
  ASSERT_NE(session.capture(), nullptr);
  // Deliveries + radio losses match the report's accounting (WAN drops are
  // ledgered separately; small slack for feedback-path records).
  const auto cap_delivered = session.capture()->count() -
                             session.capture()->lost_count() -
                             session.capture()->wan_drop_count();
  EXPECT_NEAR(static_cast<double>(cap_delivered),
              static_cast<double>(r.packets_received), 5.0);
  EXPECT_EQ(session.capture()->lost_count(), r.radio_losses + r.buffer_drops);
  EXPECT_EQ(session.capture()->wan_drop_count(), r.wan_drops);
}

// --- Bootstrap CI ---

TEST(Bootstrap, EmptyAndSingleton) {
  const auto empty = metrics::bootstrap_mean_ci({});
  EXPECT_EQ(empty.mean, 0.0);
  const auto one = metrics::bootstrap_mean_ci({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.lo, 7.0);
  EXPECT_DOUBLE_EQ(one.hi, 7.0);
}

TEST(Bootstrap, CoversTheMean) {
  std::vector<double> xs;
  sim::Rng rng{12};
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const auto ci = metrics::bootstrap_mean_ci(xs);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, 10.0, 1.0);
  // Width roughly 2 * 1.96 * sigma/sqrt(n) ~ 1.1.
  EXPECT_LT(ci.hi - ci.lo, 2.5);
  EXPECT_GT(ci.hi - ci.lo, 0.3);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto a = metrics::bootstrap_mean_ci(xs, 0.95, 500, 42);
  const auto b = metrics::bootstrap_mean_ci(xs, 0.95, 500, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

// --- QoE ---

pipeline::SessionReport synthetic_report(double ssim, double latency_ms,
                                         double stalls_per_min) {
  pipeline::SessionReport r;
  for (int i = 0; i < 1000; ++i) {
    r.ssim_samples.push_back(ssim);
    r.playback_latency_ms.push_back(latency_ms);
  }
  r.stalls_per_minute = stalls_per_min;
  return r;
}

TEST(Qoe, PerfectSessionScoresHigh) {
  const auto q = pipeline::score_qoe(synthetic_report(0.97, 180.0, 0.0));
  EXPECT_GT(q.mos, 4.5);
}

TEST(Qoe, FrozenPictureScoresLow) {
  const auto q = pipeline::score_qoe(synthetic_report(0.97, 180.0, 20.0));
  EXPECT_LT(q.mos, 2.0);
}

TEST(Qoe, LaggyPlaybackScoresLow) {
  const auto q = pipeline::score_qoe(synthetic_report(0.97, 900.0, 0.0));
  EXPECT_LT(q.mos, 2.0);
}

TEST(Qoe, BlurryPictureDegrades) {
  const auto sharp = pipeline::score_qoe(synthetic_report(0.95, 180.0, 0.0));
  const auto blurry = pipeline::score_qoe(synthetic_report(0.55, 180.0, 0.0));
  EXPECT_GT(sharp.mos, blurry.mos + 0.5);
}

TEST(Qoe, EmptyReportIsFloor) {
  const auto q = pipeline::score_qoe(pipeline::SessionReport{});
  EXPECT_DOUBLE_EQ(q.mos, 1.0);
}

TEST(Qoe, RealSessionInRange) {
  experiment::Scenario s;
  s.env = experiment::Environment::kUrban;
  s.cc = pipeline::CcKind::kGcc;
  s.seed = 57;
  const auto q = pipeline::score_qoe(experiment::run_scenario(s));
  EXPECT_GE(q.mos, 1.0);
  EXPECT_LE(q.mos, 5.0);
  EXPECT_GT(q.mos, 2.0);  // GCC urban is a usable configuration
}

// --- Scheduled multipath ---

TEST(MultipathScheduled, AggregatesWithoutDuplication) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 58;
  sim::Rng rng{s.seed * 0x9E3779B97F4A7C15ULL + 0x1234567};
  auto layout_a = experiment::make_layout(s, rng);
  experiment::Scenario s2 = s;
  s2.env = experiment::Environment::kRuralP2;
  auto layout_b = experiment::make_layout(s2, rng);
  auto traj = experiment::make_trajectory(s, rng);
  auto cfg = experiment::make_session_config(s);
  pipeline::MultipathSession mp{cfg,  std::move(layout_a),
                                std::move(layout_b), &traj,
                                "mp-sched", pipeline::MultipathMode::kScheduled};
  const auto r = mp.run();
  EXPECT_EQ(r.cc_name, "static+mpsched");
  EXPECT_EQ(mp.duplicates_discarded(), 0u);  // nothing sent twice
  EXPECT_GT(mp.rescued_by_b() + 0u, 0u);     // link B actually used
  EXPECT_GT(r.frames_played, r.frames_encoded * 9 / 10);
}

}  // namespace
}  // namespace rpv
