#include "geo/flight_profiles.hpp"
#include "geo/trajectory.hpp"
#include "geo/vec3.hpp"

#include <gtest/gtest.h>

namespace rpv::geo {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 sum = a + b;
  EXPECT_EQ(sum.x, 5);
  EXPECT_EQ(sum.y, 7);
  EXPECT_EQ(sum.z, 9);
  const Vec3 diff = b - a;
  EXPECT_EQ(diff.x, 3);
  const Vec3 scaled = a * 2.0;
  EXPECT_EQ(scaled.z, 6);
}

TEST(Vec3, Norms) {
  const Vec3 v{3, 4, 12};
  EXPECT_DOUBLE_EQ(v.norm(), 13.0);
  EXPECT_DOUBLE_EQ(v.norm2d(), 5.0);
}

TEST(Vec3, DistanceHelpers) {
  const Vec3 a{0, 0, 0}, b{3, 4, 12};
  EXPECT_DOUBLE_EQ(distance(a, b), 13.0);
  EXPECT_DOUBLE_EQ(distance2d(a, b), 5.0);
}

TEST(Trajectory, EmptyReturnsOrigin) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.position(sim::TimePoint::from_us(123)).x, 0.0);
}

TEST(Trajectory, MoveToComputesTravelTime) {
  Trajectory t;
  t.move_to({0, 0, 0}, 0.0);
  t.move_to({100, 0, 0}, 10.0);  // 100 m at 10 m/s = 10 s
  EXPECT_DOUBLE_EQ(t.duration().sec(), 10.0);
}

TEST(Trajectory, LinearInterpolation) {
  Trajectory t;
  t.move_to({0, 0, 0}, 0.0);
  t.move_to({100, 0, 0}, 10.0);
  const auto mid = t.position(sim::TimePoint::origin() + sim::Duration::seconds(5.0));
  EXPECT_NEAR(mid.x, 50.0, 1e-9);
}

TEST(Trajectory, ClampsOutsideRange) {
  Trajectory t;
  t.move_to({0, 0, 0}, 0.0);
  t.move_to({100, 0, 0}, 10.0);
  EXPECT_EQ(t.position(sim::TimePoint::from_us(-100)).x, 0.0);
  EXPECT_EQ(t.position(t.end() + sim::Duration::seconds(100.0)).x, 100.0);
}

TEST(Trajectory, HoverKeepsPosition) {
  Trajectory t;
  t.move_to({5, 5, 5}, 0.0);
  t.hover(sim::Duration::seconds(10.0));
  const auto p = t.position(sim::TimePoint::origin() + sim::Duration::seconds(5.0));
  EXPECT_EQ(p.x, 5.0);
  EXPECT_EQ(p.z, 5.0);
  EXPECT_DOUBLE_EQ(t.duration().sec(), 10.0);
}

TEST(Trajectory, SpeedOnSegment) {
  Trajectory t;
  t.move_to({0, 0, 0}, 0.0);
  t.move_to({100, 0, 0}, 10.0);
  const auto mid = sim::TimePoint::origin() + sim::Duration::seconds(5.0);
  EXPECT_NEAR(t.speed(mid), 10.0, 1e-9);
}

TEST(Trajectory, SpeedZeroWhileHovering) {
  Trajectory t;
  t.move_to({0, 0, 0}, 0.0);
  t.hover(sim::Duration::seconds(10.0));
  const auto mid = sim::TimePoint::origin() + sim::Duration::seconds(5.0);
  EXPECT_EQ(t.speed(mid), 0.0);
}

TEST(FlightProfile, ReachesAllPaperAltitudes) {
  const auto t = make_flight_profile({0, 0, 0});
  bool saw40 = false, saw80 = false, saw120 = false;
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::seconds(1.0)) {
    const double z = t.altitude(tp);
    if (std::abs(z - 40.0) < 0.5) saw40 = true;
    if (std::abs(z - 80.0) < 0.5) saw80 = true;
    if (std::abs(z - 120.0) < 0.5) saw120 = true;
    EXPECT_LE(z, 120.5);  // European regulatory ceiling
  }
  EXPECT_TRUE(saw40);
  EXPECT_TRUE(saw80);
  EXPECT_TRUE(saw120);
}

TEST(FlightProfile, StartsAndEndsOnGround) {
  const auto t = make_flight_profile({0, 0, 0});
  EXPECT_EQ(t.altitude(t.start()), 0.0);
  EXPECT_EQ(t.altitude(t.end()), 0.0);
}

TEST(FlightProfile, AirTimeRoughlySixMinutes) {
  const auto t = make_flight_profile({0, 0, 0});
  // Paper: air time per flight ~6 min; accept a generous band.
  EXPECT_GT(t.duration().sec(), 180.0);
  EXPECT_LT(t.duration().sec(), 600.0);
}

TEST(FlightProfile, HorizontalLeapsCoverConfiguredDistance) {
  FlightProfileConfig cfg;
  cfg.leap_m = 200.0;
  const auto t = make_flight_profile({0, 0, 0}, cfg);
  double max_x = 0.0;
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::seconds(1.0)) {
    max_x = std::max(max_x, std::abs(t.position(tp).x));
  }
  EXPECT_NEAR(max_x, 200.0, 1.0);
}

TEST(FlightProfile, MaxSpeedRespectsConfig) {
  FlightProfileConfig cfg;
  const auto t = make_flight_profile({0, 0, 0}, cfg);
  double vmax = 0.0;
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::millis(500)) {
    vmax = std::max(vmax, t.speed(tp));
  }
  EXPECT_LE(vmax, cfg.max_speed_mps + 0.1);
  EXPECT_GT(vmax, cfg.cruise_speed_mps);  // the fast leap exercised
}

TEST(GroundProfile, StaysNearGround) {
  sim::Rng rng{3};
  const auto t = make_ground_profile({0, 0, 0}, rng);
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::seconds(2.0)) {
    EXPECT_LT(t.altitude(tp), 2.0);
  }
}

TEST(GroundProfile, IncludesStationaryStretches) {
  sim::Rng rng{3};
  const auto t = make_ground_profile({0, 0, 0}, rng);
  int stationary = 0, total = 0;
  for (auto tp = t.start(); tp < t.end(); tp += sim::Duration::seconds(1.0)) {
    ++total;
    if (t.speed(tp) < 0.01) ++stationary;
  }
  EXPECT_GT(stationary, total / 10);  // the paper notes stopped stretches
}

TEST(StaticProfile, HoldsPositionForDuration) {
  const auto t = make_static_profile({1, 2, 3}, sim::Duration::seconds(60.0));
  EXPECT_DOUBLE_EQ(t.duration().sec(), 60.0);
  const auto p = t.position(t.start() + sim::Duration::seconds(30.0));
  EXPECT_EQ(p.x, 1.0);
  EXPECT_EQ(p.z, 3.0);
}

}  // namespace
}  // namespace rpv::geo
