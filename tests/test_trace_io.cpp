#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "experiment/scenario.hpp"

namespace rpv::trace {
namespace {

std::string temp_dir() {
  auto dir = std::filesystem::temp_directory_path() / "rpv_trace_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(TraceIo, TimeSeriesRoundTrip) {
  metrics::TimeSeries ts;
  for (int i = 0; i < 100; ++i) {
    ts.add(sim::TimePoint::from_us(i * 333'000), 10.0 + i * 0.5);
  }
  const auto path = temp_dir() + "/roundtrip.csv";
  ASSERT_TRUE(write_time_series_csv(path, ts, "value"));
  const auto loaded = load_time_series_csv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->count(), ts.count());
  for (std::size_t i = 0; i < ts.count(); ++i) {
    EXPECT_NEAR(loaded->samples()[i].t.sec(), ts.samples()[i].t.sec(), 1e-6);
    EXPECT_NEAR(loaded->samples()[i].value, ts.samples()[i].value, 1e-9);
  }
}

TEST(TraceIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_time_series_csv("/nonexistent/nope.csv").has_value());
}

TEST(TraceIo, LoadRejectsGarbage) {
  const auto path = temp_dir() + "/garbage.csv";
  {
    std::ofstream out{path};
    out << "t_sec,value\nnot,a number at all,extra\n";
  }
  // Parsing the malformed row must fail cleanly, not crash.
  const auto loaded = load_time_series_csv(path);
  if (loaded) EXPECT_LE(loaded->count(), 1u);
}

TEST(TraceIo, SamplesCsvWritten) {
  const auto path = temp_dir() + "/samples.csv";
  ASSERT_TRUE(write_samples_csv(path, {1.0, 2.0, 3.0}, "x"));
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "index,x");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(TraceIo, ExportSessionWritesAllFiles) {
  experiment::Scenario s;
  s.env = experiment::Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 3;
  const auto report = experiment::run_scenario(s);
  const auto dir = temp_dir() + "/session";
  const auto written = export_session(report, dir, "t");
  EXPECT_EQ(written.size(), 9u);
  for (const auto& f : written) {
    EXPECT_TRUE(std::filesystem::exists(f)) << f;
    EXPECT_GT(std::filesystem::file_size(f), 10u) << f;
  }
  // Round-trip one of the series.
  const auto owd = load_time_series_csv(dir + "/t_owd.csv");
  ASSERT_TRUE(owd.has_value());
  EXPECT_EQ(owd->count(), report.owd_trace_ms.count());
}

TEST(TraceIo, ExportFailsOnBadDirectory) {
  pipeline::SessionReport empty;
  const auto written = export_session(empty, "/proc/definitely/not/writable", "x");
  EXPECT_TRUE(written.empty());
}

}  // namespace
}  // namespace rpv::trace
