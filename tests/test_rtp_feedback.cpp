#include "rtp/feedback.hpp"

#include <gtest/gtest.h>

namespace rpv::rtp {
namespace {

using sim::TimePoint;

TimePoint at_ms(double ms) {
  return TimePoint::from_us(static_cast<std::int64_t>(ms * 1000));
}

// --- TwccCollector ---

TEST(Twcc, EmptyReportWhenNoData) {
  TwccCollector c;
  EXPECT_FALSE(c.has_data());
  const auto r = c.build_report(at_ms(100));
  EXPECT_TRUE(r.results.empty());
}

TEST(Twcc, ReportsAllReceivedPackets) {
  TwccCollector c;
  for (std::uint16_t s = 0; s < 10; ++s) c.on_packet(s, at_ms(s));
  const auto r = c.build_report(at_ms(100));
  ASSERT_EQ(r.results.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(r.results[i].received);
    EXPECT_EQ(r.results[i].transport_seq, i);
  }
}

TEST(Twcc, GapsReportedAsLost) {
  TwccCollector c;
  c.on_packet(0, at_ms(0));
  c.on_packet(3, at_ms(3));
  const auto r = c.build_report(at_ms(100));
  ASSERT_EQ(r.results.size(), 4u);
  EXPECT_TRUE(r.results[0].received);
  EXPECT_FALSE(r.results[1].received);
  EXPECT_FALSE(r.results[2].received);
  EXPECT_TRUE(r.results[3].received);
}

TEST(Twcc, ConsecutiveReportsCoverContiguously) {
  TwccCollector c;
  c.on_packet(0, at_ms(0));
  c.on_packet(1, at_ms(1));
  auto r1 = c.build_report(at_ms(10));
  c.on_packet(4, at_ms(4));
  auto r2 = c.build_report(at_ms(20));
  // The second report must start right after the first's coverage and
  // include packets 2 and 3 as lost.
  ASSERT_EQ(r2.results.size(), 3u);
  EXPECT_EQ(r2.results[0].transport_seq, 2);
  EXPECT_FALSE(r2.results[0].received);
  EXPECT_FALSE(r2.results[1].received);
  EXPECT_TRUE(r2.results[2].received);
}

TEST(Twcc, PendingClearedAfterReport) {
  TwccCollector c;
  c.on_packet(0, at_ms(0));
  c.build_report(at_ms(10));
  EXPECT_FALSE(c.has_data());
}

TEST(Twcc, ArrivalTimestampsPreserved) {
  TwccCollector c;
  c.on_packet(5, at_ms(42.5));
  const auto r = c.build_report(at_ms(100));
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].arrival, at_ms(42.5));
}

TEST(Twcc, SurvivesSequenceWrap) {
  TwccCollector c;
  c.on_packet(65534, at_ms(0));
  c.on_packet(65535, at_ms(1));
  c.build_report(at_ms(10));
  c.on_packet(0, at_ms(2));
  c.on_packet(1, at_ms(3));
  const auto r = c.build_report(at_ms(20));
  ASSERT_EQ(r.results.size(), 2u);
  EXPECT_EQ(r.results[0].transport_seq, 0);
  EXPECT_EQ(r.results[1].transport_seq, 1);
}

TEST(Twcc, HugeGapGuardKeepsReportBounded) {
  TwccCollector c;
  c.on_packet(0, at_ms(0));
  c.build_report(at_ms(10));
  // Extremely long silence then a far-away seq (e.g. after several wraps
  // worth of discards) must not produce a multi-million row report.
  c.on_packet(30000, at_ms(1000));
  const auto r = c.build_report(at_ms(1010));
  EXPECT_LE(r.results.size(), 20001u);
}

// --- Rfc8888Collector ---

TEST(Rfc8888, ReportsWindowAroundHighest) {
  Rfc8888Collector c{8};
  for (std::uint16_t s = 0; s < 20; ++s) c.on_packet(s, at_ms(s));
  const auto r = c.build_report(at_ms(100));
  ASSERT_EQ(r.results.size(), 8u);
  EXPECT_EQ(r.results.front().transport_seq, 12);
  EXPECT_EQ(r.results.back().transport_seq, 19);
}

TEST(Rfc8888, WindowCoversEverythingEarlyOn) {
  Rfc8888Collector c{64};
  for (std::uint16_t s = 0; s < 5; ++s) c.on_packet(s, at_ms(s));
  const auto r = c.build_report(at_ms(10));
  EXPECT_EQ(r.results.size(), 5u);
}

TEST(Rfc8888, MissingInWindowReportedLost) {
  Rfc8888Collector c{8};
  c.on_packet(0, at_ms(0));
  c.on_packet(2, at_ms(2));
  const auto r = c.build_report(at_ms(10));
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_TRUE(r.results[0].received);
  EXPECT_FALSE(r.results[1].received);
  EXPECT_TRUE(r.results[2].received);
}

TEST(Rfc8888, PacketsBeyondWindowFallOut) {
  // The paper's §4.2.1 pathology: packets received but older than the
  // bounded window are never acknowledged.
  Rfc8888Collector c{4};
  for (std::uint16_t s = 0; s < 3; ++s) c.on_packet(s, at_ms(s));
  // A burst advances the highest seq by 10; packets 0-2 leave the window.
  for (std::uint16_t s = 3; s < 13; ++s) c.on_packet(s, at_ms(10));
  const auto r = c.build_report(at_ms(20));
  ASSERT_EQ(r.results.size(), 4u);
  EXPECT_EQ(r.results.front().transport_seq, 9);  // 0-8 unacknowledgeable
}

TEST(Rfc8888, WiderWindowCoversBurst) {
  Rfc8888Collector c{64};
  for (std::uint16_t s = 0; s < 40; ++s) c.on_packet(s, at_ms(1));
  const auto r = c.build_report(at_ms(10));
  EXPECT_EQ(r.results.size(), 40u);  // all acknowledged with the wide window
}

TEST(Rfc8888, RepeatedReportsAreIdempotent) {
  Rfc8888Collector c{16};
  for (std::uint16_t s = 0; s < 10; ++s) c.on_packet(s, at_ms(s));
  const auto r1 = c.build_report(at_ms(10));
  const auto r2 = c.build_report(at_ms(20));
  EXPECT_EQ(r1.results.size(), r2.results.size());
  EXPECT_EQ(r1.results.front().transport_seq, r2.results.front().transport_seq);
}

TEST(Rfc8888, HasDataAfterFirstPacket) {
  Rfc8888Collector c{16};
  EXPECT_FALSE(c.has_data());
  c.on_packet(0, at_ms(0));
  EXPECT_TRUE(c.has_data());
}

TEST(Rfc8888, AckWindowAccessor) {
  Rfc8888Collector c{256};
  EXPECT_EQ(c.ack_window(), 256);
}

TEST(Rfc8888, SurvivesWrap) {
  Rfc8888Collector c{8};
  // Walk the full sequence space past the wrap.
  std::uint16_t s = 65500;
  for (int i = 0; i < 60; ++i) c.on_packet(s++, at_ms(i));
  const auto r = c.build_report(at_ms(100));
  ASSERT_EQ(r.results.size(), 8u);
  for (const auto& pr : r.results) EXPECT_TRUE(pr.received);
}

}  // namespace
}  // namespace rpv::rtp
