#include "metrics/cdf.hpp"
#include "metrics/handover_log.hpp"
#include "metrics/summary.hpp"
#include "metrics/text_table.hpp"
#include "metrics/time_series.hpp"

#include <gtest/gtest.h>

namespace rpv::metrics {
namespace {

using sim::Duration;
using sim::TimePoint;

// --- Cdf ---

TEST(Cdf, EmptyBehaviour) {
  Cdf c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.quantile(0.5), 0.0);
  EXPECT_EQ(c.fraction_below(10.0), 0.0);
}

TEST(Cdf, QuantilesOfKnownSet) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_NEAR(c.median(), 50.5, 1e-9);
  EXPECT_EQ(c.min(), 1.0);
  EXPECT_EQ(c.max(), 100.0);
  EXPECT_NEAR(c.quantile(0.25), 25.75, 1e-9);
}

TEST(Cdf, MeanMatchesArithmetic) {
  Cdf c;
  c.add_all({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(c.mean(), 4.0);
}

TEST(Cdf, FractionBelowAndAtLeastComplement) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_below(5.0), 0.5);   // values <= 5
  EXPECT_DOUBLE_EQ(c.fraction_at_least(6.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(100.0), 1.0);
}

TEST(Cdf, InterleavedAddAndQuery) {
  Cdf c;
  c.add(5.0);
  EXPECT_EQ(c.median(), 5.0);
  c.add(1.0);
  c.add(9.0);
  EXPECT_EQ(c.median(), 5.0);  // re-sorts after new samples
}

TEST(Cdf, EvaluateVector) {
  Cdf c;
  c.add_all({1, 2, 3, 4});
  const auto f = c.evaluate({0.0, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
}

TEST(Cdf, ToRowsHasRequestedPoints) {
  Cdf c;
  c.add_all({1, 2, 3});
  const auto rows = c.to_rows(4);
  EXPECT_EQ(std::count(rows.begin(), rows.end(), '\n'), 5);
}

TEST(Cdf, QuantileClampsArgument) {
  Cdf c;
  c.add_all({1, 2, 3});
  EXPECT_EQ(c.quantile(-1.0), 1.0);
  EXPECT_EQ(c.quantile(2.0), 3.0);
}

// --- Summary ---

TEST(Summary, EmptyIsZeroed) {
  const auto s = Summary::of({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, BasicStats) {
  const auto s = Summary::of({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summary, OutlierDetection) {
  std::vector<double> v(100, 10.0);
  v.push_back(1000.0);
  const auto s = Summary::of(v);
  EXPECT_EQ(s.outliers_hi, 1u);
  EXPECT_EQ(s.whisker_hi, 10.0);
}

TEST(Summary, UnsortedInputHandled) {
  const auto s = Summary::of({5, 1, 4, 2, 3});
  EXPECT_EQ(s.median, 3.0);
}

TEST(Summary, ToStringContainsFields) {
  const auto s = Summary::of({1, 2, 3});
  const auto str = s.to_string();
  EXPECT_NE(str.find("med="), std::string::npos);
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

// --- TimeSeries ---

TEST(TimeSeries, WindowQueries) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.add(TimePoint::from_us(i * 1000), static_cast<double>(i));
  }
  const auto vals = ts.values_in(TimePoint::from_us(2000), TimePoint::from_us(5000));
  EXPECT_EQ(vals, (std::vector<double>{2, 3, 4, 5}));
}

TEST(TimeSeries, MaxMinMeanInWindow) {
  TimeSeries ts;
  ts.add(TimePoint::from_us(0), 3.0);
  ts.add(TimePoint::from_us(10), 9.0);
  ts.add(TimePoint::from_us(20), 6.0);
  EXPECT_EQ(ts.max_in(TimePoint::from_us(0), TimePoint::from_us(20)), 9.0);
  EXPECT_EQ(ts.min_in(TimePoint::from_us(0), TimePoint::from_us(20)), 3.0);
  EXPECT_EQ(ts.mean_in(TimePoint::from_us(0), TimePoint::from_us(20)), 6.0);
}

TEST(TimeSeries, EmptyWindowReturnsNullopt) {
  TimeSeries ts;
  ts.add(TimePoint::from_us(100), 1.0);
  EXPECT_FALSE(ts.max_in(TimePoint::from_us(0), TimePoint::from_us(50)).has_value());
}

TEST(TimeSeries, ValuesExtraction) {
  TimeSeries ts;
  ts.add(TimePoint::from_us(1), 1.5);
  ts.add(TimePoint::from_us(2), 2.5);
  EXPECT_EQ(ts.values(), (std::vector<double>{1.5, 2.5}));
}

// --- HandoverLog ---

TEST(HandoverLog, FrequencyPerSecond) {
  HandoverLog log;
  for (int i = 0; i < 6; ++i) {
    log.record({TimePoint::from_us(i * 1'000'000), Duration::millis(20), 1u, 2u, false});
  }
  EXPECT_DOUBLE_EQ(log.frequency(Duration::seconds(60.0)), 0.1);
  EXPECT_EQ(log.frequency(Duration::zero()), 0.0);
}

TEST(HandoverLog, HetExtraction) {
  HandoverLog log;
  log.record({TimePoint::origin(), Duration::millis(25), 1u, 2u, false});
  log.record({TimePoint::origin(), Duration::millis(900), 2u, 3u, false});
  const auto het = log.het_ms();
  ASSERT_EQ(het.size(), 2u);
  EXPECT_DOUBLE_EQ(het[0], 25.0);
  EXPECT_DOUBLE_EQ(het[1], 900.0);
}

TEST(HandoverLog, PingPongCounting) {
  HandoverLog log;
  log.record({TimePoint::origin(), Duration::millis(20), 1u, 2u, false});
  log.record({TimePoint::origin(), Duration::millis(20), 2u, 1u, true});
  EXPECT_EQ(log.ping_pong_count(), 1u);
}

TEST(HandoverLog, LatencyRatiosAroundHandover) {
  HandoverLog log;
  // Handover at t = 5 s with HET 50 ms.
  log.record({TimePoint::origin() + Duration::seconds(5.0), Duration::millis(50),
              1u, 2u, false});
  TimeSeries owd;
  // Before the HO: latency ramps 50 -> 400 ms; after: stable 50 ms.
  for (int ms = 4000; ms < 5000; ms += 100) {
    owd.add(TimePoint::origin() + Duration::millis(ms), 50.0 + (ms - 4000) * 0.35);
  }
  for (int ms = 5050; ms < 6100; ms += 100) {
    owd.add(TimePoint::origin() + Duration::millis(ms), 50.0);
  }
  const auto ratios = log.latency_ratios(owd);
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_GT(ratios[0].before, 5.0);
  EXPECT_NEAR(ratios[0].after, 1.0, 0.01);
}

TEST(HandoverLog, LatencyRatioSkipsEmptyWindows) {
  HandoverLog log;
  log.record({TimePoint::origin() + Duration::seconds(100.0), Duration::millis(20),
              1u, 2u, false});
  TimeSeries owd;  // no samples anywhere near the HO
  owd.add(TimePoint::origin(), 50.0);
  EXPECT_TRUE(log.latency_ratios(owd).empty());
}

// --- TextTable ---

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace rpv::metrics
