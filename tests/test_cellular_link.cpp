#include "cellular/cellular_link.hpp"

#include <gtest/gtest.h>

#include "geo/flight_profiles.hpp"

namespace rpv::cellular {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;

struct Fixture {
  Simulator sim;
  geo::Trajectory trajectory;
  std::unique_ptr<CellularLink> link;

  explicit Fixture(geo::Trajectory traj, CellularLinkConfig cfg = {},
                   std::uint64_t seed = 1)
      : trajectory{std::move(traj)} {
    sim::Rng rng{seed};
    auto layout = make_urban_layout(rng);
    link = std::make_unique<CellularLink>(sim, std::move(layout), cfg,
                                          &trajectory, rng.fork());
  }
};

net::Packet media_packet(std::uint64_t id, std::size_t bytes = 1240) {
  net::Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

TEST(CellularLink, UplinkDeliversWithPositiveLatency) {
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(10.0))};
  f.link->start();
  std::vector<net::Packet> got;
  f.sim.schedule_at(TimePoint::from_us(1000), [&] {
    f.link->send_uplink(media_packet(1), [&](net::Packet p) { got.push_back(p); });
  });
  f.sim.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(got[0].received, got[0].enqueued);
  // At minimum the access latency applies.
  EXPECT_GT((got[0].received - got[0].enqueued).ms(), 10.0);
}

TEST(CellularLink, DownlinkDeliversQuickly) {
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(10.0))};
  f.link->start();
  std::vector<net::Packet> got;
  f.sim.schedule_at(TimePoint::from_us(1000), [&] {
    f.link->send_downlink(media_packet(2, 100),
                          [&](net::Packet p) { got.push_back(p); });
  });
  f.sim.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_LT((f.sim.now() - TimePoint::from_us(1000)).ms(), 10'000.0);
}

TEST(CellularLink, ManyPacketsConserved) {
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(30.0))};
  f.link->start();
  int delivered = 0, lost = 0;
  f.link->set_loss_callback([&](const net::Packet&) { ++lost; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    // Capture `i` by value: the lambda runs from the event loop long after
    // the loop variable's scope has ended.
    f.sim.schedule_at(TimePoint::from_us(i * 2000), [&f, &delivered, i] {
      f.link->send_uplink(media_packet(static_cast<std::uint64_t>(i) + 10),
                          [&](net::Packet) { ++delivered; });
    });
  }
  f.sim.run_all();
  EXPECT_EQ(delivered + lost, n);
  EXPECT_GT(delivered, n * 95 / 100);
}

TEST(CellularLink, FlightProducesHandovers) {
  Fixture f{geo::make_flight_profile({0, 0, 0})};
  f.link->start();
  f.sim.run_all();
  EXPECT_GT(f.link->handover_log().count(), 0u);
  EXPECT_GT(f.link->distinct_cells_seen(), 1u);
}

TEST(CellularLink, CapacityTraceCoversTrajectory) {
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(10.0))};
  f.link->start();
  f.sim.run_all();
  // One measurement per 100 ms over 10 s.
  EXPECT_NEAR(static_cast<double>(f.link->capacity_trace().count()), 100.0, 5.0);
  for (const auto& s : f.link->capacity_trace().samples()) {
    EXPECT_GT(s.value, 0.0);
  }
}

TEST(CellularLink, AirborneFractionTracksAltitude) {
  Fixture f{geo::make_flight_profile({0, 0, 0})};
  f.link->start();
  double max_frac = 0.0;
  for (int s = 0; s < 300; ++s) {
    f.sim.schedule_at(TimePoint::from_us(s * 1'000'000),
                      [&] { max_frac = std::max(max_frac, f.link->airborne_fraction()); });
  }
  f.sim.run_all();
  EXPECT_GT(max_frac, 0.8);  // at 120 m with 45 m scale: ~0.93
}

TEST(CellularLink, UplinkOrderPreserved) {
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(20.0))};
  f.link->start();
  std::vector<std::uint64_t> order;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    f.sim.schedule_at(TimePoint::from_us(static_cast<std::int64_t>(i) * 500), [&, i] {
      f.link->send_uplink(media_packet(i),
                          [&](net::Packet p) { order.push_back(p.id); });
    });
  }
  f.sim.run_all();
  // Serialization is FIFO; only the per-packet access jitter may reorder,
  // and at 500 us spacing it rarely does. Verify near-order.
  int inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_LT(inversions, static_cast<int>(order.size()) / 10);
}

TEST(CellularLink, DeterministicAcrossSeeds) {
  auto run = [](std::uint64_t seed) {
    Fixture f{geo::make_flight_profile({0, 0, 0}), CellularLinkConfig{}, seed};
    f.link->start();
    f.sim.run_all();
    return f.link->handover_log().count();
  };
  EXPECT_EQ(run(77), run(77));
}

TEST(CellularLink, QueueDelayVisible) {
  CellularLinkConfig cfg;
  Fixture f{geo::make_static_profile({0, 0, 1.5}, Duration::seconds(10.0)), cfg};
  f.link->start();
  f.sim.schedule_at(TimePoint::from_us(1000), [&] {
    // Dump a burst far above the link rate; queue delay must become visible.
    for (int i = 0; i < 200; ++i) {
      f.link->send_uplink(media_packet(1000 + i, 1240), [](net::Packet) {});
    }
    EXPECT_GT(f.link->queuing_delay_ms(), 1.0);
    EXPECT_GT(f.link->queued_bytes(), 0u);
  });
  f.sim.run_all();
}

}  // namespace
}  // namespace rpv::cellular
