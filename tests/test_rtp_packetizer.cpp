#include "rtp/packetizer.hpp"

#include <gtest/gtest.h>

namespace rpv::rtp {
namespace {

video::Frame make_frame(std::uint32_t id, std::size_t bytes) {
  video::Frame f;
  f.id = id;
  f.size_bytes = bytes;
  f.capture_time = sim::TimePoint::from_us(id * 33333);
  return f;
}

TEST(Packetizer, SplitsAtMtu) {
  Packetizer p;
  const auto packets = p.packetize(make_frame(0, 3000));
  ASSERT_EQ(packets.size(), 3u);  // 1200 + 1200 + 600
}

TEST(Packetizer, SingleSmallPacket) {
  Packetizer p;
  const auto packets = p.packetize(make_frame(0, 100));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].frame_last);
}

TEST(Packetizer, EmptyFrameStillEmitsOnePacket) {
  Packetizer p;
  const auto packets = p.packetize(make_frame(0, 0));
  ASSERT_EQ(packets.size(), 1u);
}

TEST(Packetizer, HeaderOverheadIncluded) {
  PacketizerConfig cfg;
  Packetizer p{cfg};
  const auto packets = p.packetize(make_frame(0, 1200));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].size_bytes, 1200 + cfg.header_overhead_bytes);
}

TEST(Packetizer, PayloadBytesConserved) {
  PacketizerConfig cfg;
  Packetizer p{cfg};
  const std::size_t frame_bytes = 54321;
  const auto packets = p.packetize(make_frame(0, frame_bytes));
  std::size_t payload = 0;
  for (const auto& pkt : packets) payload += pkt.size_bytes - cfg.header_overhead_bytes;
  EXPECT_EQ(payload, frame_bytes);
}

TEST(Packetizer, MarkerOnlyOnLastPacket) {
  Packetizer p;
  const auto packets = p.packetize(make_frame(0, 5000));
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].frame_last, i + 1 == packets.size());
  }
}

TEST(Packetizer, SequenceNumbersContinuousAcrossFrames) {
  Packetizer p;
  const auto a = p.packetize(make_frame(0, 2500));
  const auto b = p.packetize(make_frame(1, 2500));
  EXPECT_EQ(b.front().rtp_seq, static_cast<std::uint16_t>(a.back().rtp_seq + 1));
  EXPECT_EQ(b.front().transport_seq,
            static_cast<std::uint16_t>(a.back().transport_seq + 1));
}

TEST(Packetizer, SequenceWrapsAt16Bits) {
  Packetizer p;
  // Burn through the full sequence space: 65 packets x 1008 frames > 65536.
  for (int i = 0; i < 1008; ++i) p.packetize(make_frame(i, 1200 * 65));
  const auto packets = p.packetize(make_frame(1008, 1200 * 65));
  // 1008*65 = 65520; the wrap falls inside this frame's 65 packets.
  bool wrapped = false;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    if (packets[i].rtp_seq < packets[i - 1].rtp_seq) wrapped = true;
  }
  EXPECT_TRUE(wrapped);
}

TEST(Packetizer, FrameMetadataPropagated) {
  Packetizer p;
  const auto f = make_frame(77, 3000);
  const auto packets = p.packetize(f);
  for (const auto& pkt : packets) {
    EXPECT_EQ(pkt.frame_id, 77u);
    EXPECT_EQ(pkt.rtp_timestamp, f.capture_time);
    EXPECT_EQ(pkt.kind, net::PacketKind::kRtpVideo);
  }
}

TEST(Packetizer, UniquePacketIds) {
  Packetizer p;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 50; ++i) {
    for (const auto& pkt : p.packetize(make_frame(i, 4000))) {
      EXPECT_TRUE(ids.insert(pkt.id).second);
    }
  }
}

TEST(Packetizer, CustomMtuRespected) {
  PacketizerConfig cfg;
  cfg.mtu_payload_bytes = 500;
  Packetizer p{cfg};
  const auto packets = p.packetize(make_frame(0, 1600));
  EXPECT_EQ(packets.size(), 4u);  // 500*3 + 100
}

}  // namespace
}  // namespace rpv::rtp
