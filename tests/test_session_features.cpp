// Session-level tests for the C2 channel, FEC integration, and the 5G-SA
// access-technology preset.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "metrics/cdf.hpp"

namespace rpv::experiment {
namespace {

TEST(C2, CommandsAndTelemetryFlow) {
  Scenario s;
  s.env = Environment::kUrban;
  s.cc = pipeline::CcKind::kStatic;
  s.c2 = true;
  s.seed = 61;
  const auto r = run_scenario(s);
  EXPECT_GT(r.commands_sent, 5000u);   // 20 Hz over ~5.6 min
  EXPECT_GT(r.telemetry_sent, 2500u);  // 10 Hz
  EXPECT_GT(r.command_latency_ms.size(), r.commands_sent * 9 / 10);
  EXPECT_GT(r.telemetry_latency_ms.size(), r.telemetry_sent * 9 / 10);
}

TEST(C2, CommandLatencyWellBelowVideo) {
  Scenario s;
  s.env = Environment::kUrban;
  s.cc = pipeline::CcKind::kStatic;
  s.c2 = true;
  s.seed = 62;
  const auto r = run_scenario(s);
  metrics::Cdf cmd, vid;
  cmd.add_all(r.command_latency_ms);
  vid.add_all(r.owd_ms);
  // Related work [34][51][61]: control latency is far below video latency,
  // especially in the tail (the video shares the bloated uplink queue).
  EXPECT_LT(cmd.quantile(0.99), vid.quantile(0.99));
  EXPECT_LT(cmd.median(), 60.0);
}

TEST(C2, TelemetrySharesUplinkQueueWithVideo) {
  Scenario with_video;
  with_video.env = Environment::kUrban;
  with_video.cc = pipeline::CcKind::kStatic;
  with_video.c2 = true;
  with_video.seed = 63;
  Scenario without = with_video;
  without.cc = pipeline::CcKind::kNone;
  metrics::Cdf loaded, idle;
  loaded.add_all(run_scenario(with_video).telemetry_latency_ms);
  idle.add_all(run_scenario(without).telemetry_latency_ms);
  EXPECT_GT(loaded.quantile(0.99), idle.quantile(0.99));
}

TEST(C2, DisabledByDefault) {
  Scenario s;
  s.env = Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 64;
  const auto r = run_scenario(s);
  EXPECT_EQ(r.commands_sent, 0u);
  EXPECT_TRUE(r.command_latency_ms.empty());
}

TEST(FecSession, ReducesCorruptedFramesUnderLoss) {
  double plain = 0.0, fec = 0.0;
  for (std::uint64_t k = 0; k < 3; ++k) {
    Scenario s;
    s.env = Environment::kUrban;  // altitude loss lives here
    s.cc = pipeline::CcKind::kGcc;
    s.seed = 71 + k;
    plain += static_cast<double>(run_scenario(s).frames_corrupted);
    s.fec_group_size = 10;
    fec += static_cast<double>(run_scenario(s).frames_corrupted);
  }
  EXPECT_LT(fec, plain);
}

TEST(FecSession, OverheadVisibleInPacketCount) {
  Scenario s;
  s.env = Environment::kRuralP1;
  s.cc = pipeline::CcKind::kStatic;
  s.seed = 72;
  const auto plain = run_scenario(s);
  s.fec_group_size = 10;
  const auto fec = run_scenario(s);
  // ~10% more packets on the wire.
  EXPECT_GT(fec.packets_sent, plain.packets_sent + plain.packets_sent / 20);
}

TEST(FiveG, ShortensLatencyTail) {
  metrics::Cdf lte, nr;
  for (std::uint64_t k = 0; k < 3; ++k) {
    Scenario s;
    s.env = Environment::kUrban;
    s.cc = pipeline::CcKind::kStatic;
    s.seed = 81 + k;
    lte.add_all(run_scenario(s).owd_ms);
    s.tech = AccessTech::k5gSa;
    nr.add_all(run_scenario(s).owd_ms);
  }
  EXPECT_LT(nr.median(), lte.median());
  EXPECT_LT(nr.quantile(0.99), lte.quantile(0.99) * 0.7);
}

TEST(FiveG, FewerStalls) {
  double lte = 0.0, nr = 0.0;
  for (std::uint64_t k = 0; k < 3; ++k) {
    Scenario s;
    s.env = Environment::kUrban;
    s.cc = pipeline::CcKind::kGcc;
    s.seed = 85 + k;
    lte += run_scenario(s).stalls_per_minute;
    s.tech = AccessTech::k5gSa;
    nr += run_scenario(s).stalls_per_minute;
  }
  EXPECT_LE(nr, lte);
}

TEST(FiveG, StillRecordsHandovers) {
  Scenario s;
  s.env = Environment::kUrban;
  s.cc = pipeline::CcKind::kGcc;
  s.tech = AccessTech::k5gSa;
  s.seed = 88;
  const auto r = run_scenario(s);
  EXPECT_GT(r.handovers.count(), 0u);  // mobility still happens, just seamless
}

}  // namespace
}  // namespace rpv::experiment
