#include "cc/scream/scream_controller.hpp"

#include <gtest/gtest.h>

namespace rpv::cc::scream {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_ms(double ms) {
  return TimePoint::from_us(static_cast<std::int64_t>(ms * 1000));
}

// Ack every in-flight packet with the given one-way delay.
rtp::FeedbackReport ack_all(std::uint16_t first, std::uint16_t last,
                            double send_base_ms, double owd_ms,
                            double spacing_ms = 1.0) {
  rtp::FeedbackReport r;
  for (std::uint16_t s = first;; ++s) {
    r.results.push_back(
        {s, true, at_ms(send_base_ms + (s - first) * spacing_ms + owd_ms)});
    if (s == last) break;
  }
  return r;
}

TEST(Scream, StartsAtInitialRate) {
  ScreamController sc;
  EXPECT_DOUBLE_EQ(sc.target_bitrate_bps(), 2e6);
  EXPECT_TRUE(sc.window_limited());
}

TEST(Scream, CanSendRespectsWindow) {
  ScreamController sc;
  const auto cwnd = sc.cwnd_bytes();
  std::uint16_t seq = 0;
  std::size_t in_flight = 0;
  while (sc.can_send(1240)) {
    sc.on_packet_sent({seq++, 1240, at_ms(0)});
    in_flight += 1240;
  }
  EXPECT_LE(in_flight, cwnd);
  EXPECT_GT(in_flight, cwnd - 2 * 1240);
}

TEST(Scream, AcksFreeTheWindow) {
  ScreamController sc;
  std::uint16_t seq = 0;
  while (sc.can_send(1240)) sc.on_packet_sent({seq++, 1240, at_ms(0)});
  EXPECT_FALSE(sc.can_send(1240));
  sc.on_feedback(ack_all(0, static_cast<std::uint16_t>(seq - 1), 0.0, 40.0),
                 at_ms(80));
  EXPECT_TRUE(sc.can_send(1240));
  EXPECT_EQ(sc.bytes_in_flight(), 0u);
}

TEST(Scream, CwndGrowsWhenBelowDelayTarget) {
  ScreamController sc;
  const auto cwnd0 = sc.cwnd_bytes();
  double t = 0.0;
  std::uint16_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 10; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 30.0),
                   at_ms(t + 40));
    t += 50.0;
  }
  EXPECT_GT(sc.cwnd_bytes(), cwnd0);
}

TEST(Scream, QdelayTracked) {
  ScreamController sc;
  std::uint16_t seq = 0;
  // First round establishes the base delay at 30 ms.
  sc.on_packet_sent({seq, 1240, at_ms(0)});
  sc.on_feedback(ack_all(seq, seq, 0.0, 30.0), at_ms(35));
  ++seq;
  // Later packets see 130 ms: 100 ms of queuing delay.
  sc.on_packet_sent({seq, 1240, at_ms(100)});
  sc.on_feedback(ack_all(seq, seq, 100.0, 130.0), at_ms(235));
  EXPECT_NEAR(sc.qdelay_ms(), 100.0, 1.0);
}

TEST(Scream, HighQdelayShrinksRate) {
  ScreamController sc;
  std::uint16_t seq = 0;
  double t = 0.0;
  // Establish base at low delay, ramp a little.
  for (int round = 0; round < 30; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 5; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 30.0),
                   at_ms(t + 40));
    t += 50.0;
  }
  const double before = sc.target_bitrate_bps();
  // Sustained 200 ms queuing delay.
  for (int round = 0; round < 30; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 5; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 230.0),
                   at_ms(t + 240));
    t += 50.0;
  }
  EXPECT_LT(sc.target_bitrate_bps(), before);
}

TEST(Scream, ReportedLossTriggersBackoff) {
  ScreamController sc;
  std::uint16_t seq = 0;
  double t = 0.0;
  for (int round = 0; round < 20; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 10; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 30.0),
                   at_ms(t + 40));
    t += 50.0;
  }
  const auto cwnd_before = sc.cwnd_bytes();
  // A report where an old packet is explicitly missing far behind the head.
  const std::uint16_t lost_seq = seq;
  sc.on_packet_sent({seq++, 1240, at_ms(t)});
  for (int k = 0; k < 30; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + 1 + k)});
  rtp::FeedbackReport r;
  for (std::uint16_t s = lost_seq; s != seq; ++s) {
    r.results.push_back({s, s != lost_seq, at_ms(t + 40 + (s - lost_seq))});
  }
  sc.on_feedback(r, at_ms(t + 80));
  EXPECT_GE(sc.loss_events(), 1u);
  EXPECT_LT(sc.cwnd_bytes(), std::max(cwnd_before, sc.cwnd_bytes() + 1));
}

TEST(Scream, AckWindowMislossPathology) {
  // Packets that fall below the bounded feedback window while still in
  // flight are declared lost — the §4.2.1 bug. A report whose window starts
  // beyond unacked flights must trigger declared losses.
  ScreamController sc;
  std::uint16_t seq = 0;
  for (int k = 0; k < 100; ++k) sc.on_packet_sent({seq++, 1240, at_ms(k)});
  // Feedback covers only the last 10 packets (window bottom = 90).
  rtp::FeedbackReport r;
  for (std::uint16_t s = 90; s < 100; ++s) {
    r.results.push_back({s, true, at_ms(140 + s)});
  }
  sc.on_feedback(r, at_ms(260));
  // Packets 0..89 were never acknowledged and are below the window: lost.
  EXPECT_GE(sc.packets_declared_lost(), 80u);
}

TEST(Scream, FlightTimeoutFreesWindow) {
  ScreamController sc;
  std::uint16_t seq = 0;
  while (sc.can_send(1240)) sc.on_packet_sent({seq++, 1240, at_ms(0)});
  EXPECT_FALSE(sc.can_send(1240));
  // Radio silence for 2 s: on_tick expires the flights.
  sc.on_tick(at_ms(2000));
  EXPECT_TRUE(sc.can_send(1240));
}

TEST(Scream, QueueDiscardLowersRate) {
  ScreamController sc;
  const double before = sc.target_bitrate_bps();
  // Ensure rate sits above the floor so the discount is visible.
  std::uint16_t seq = 0;
  double t = 0.0;
  for (int round = 0; round < 100; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 10; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 30.0),
                   at_ms(t + 40));
    t += 50.0;
  }
  const double ramped = sc.target_bitrate_bps();
  EXPECT_GT(ramped, before);
  sc.on_queue_discard(at_ms(t));
  EXPECT_LT(sc.target_bitrate_bps(), ramped);
}

TEST(Scream, RateNeverBelowEncoderFloor) {
  ScreamController sc;
  for (int i = 0; i < 50; ++i) sc.on_queue_discard(at_ms(i * 100));
  EXPECT_GE(sc.target_bitrate_bps(), 2e6);
}

TEST(Scream, RampReachesPaperTargetInTime) {
  // The paper measures SCReAM taking ~25 s from 2 to 25 Mbps. Drive the
  // controller over an ideal (uncongested) link and check the ramp lands in
  // a plausible band around that.
  ScreamController sc;
  std::uint16_t seq = 0;
  double t_reach = -1.0;
  for (double t = 0.0; t < 60'000.0; t += 10.0) {
    // Send at the current target rate in 10 ms slices.
    const int pkts = std::max(
        1, static_cast<int>(sc.target_bitrate_bps() * 0.010 / 8 / 1240));
    const std::uint16_t first = seq;
    for (int k = 0; k < pkts; ++k) {
      if (sc.can_send(1240)) sc.on_packet_sent({seq++, 1240, at_ms(t)});
    }
    if (seq != first) {
      sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 35.0,
                             0.0),
                     at_ms(t + 40));
    }
    if (sc.target_bitrate_bps() >= 25e6 && t_reach < 0) t_reach = t / 1000.0;
  }
  ASSERT_GT(t_reach, 0.0);
  EXPECT_GT(t_reach, 8.0);
  EXPECT_LT(t_reach, 40.0);
}

TEST(Scream, SrttConverges) {
  ScreamController sc;
  std::uint16_t seq = 0;
  double t = 0.0;
  for (int round = 0; round < 100; ++round) {
    const std::uint16_t first = seq;
    for (int k = 0; k < 5; ++k) sc.on_packet_sent({seq++, 1240, at_ms(t + k)});
    // Feedback processed 45 ms after send.
    sc.on_feedback(ack_all(first, static_cast<std::uint16_t>(seq - 1), t, 35.0),
                   at_ms(t + 45));
    t += 50.0;
  }
  EXPECT_NEAR(sc.srtt_ms(), 46.0, 6.0);
}

}  // namespace
}  // namespace rpv::cc::scream
