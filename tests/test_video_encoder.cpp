#include "video/encoder_model.hpp"

#include <gtest/gtest.h>

namespace rpv::video {
namespace {

using sim::Duration;
using sim::TimePoint;

EncoderModel make_encoder(std::uint64_t seed = 1) {
  return EncoderModel{EncoderConfig{}, sim::Rng{seed}};
}

double realized_bitrate(EncoderModel& enc, int frames, double complexity = 1.0) {
  std::size_t total = 0;
  for (int i = 0; i < frames; ++i) {
    const auto f = enc.encode(static_cast<std::uint32_t>(i),
                              TimePoint::from_us(i * 33'333), complexity, false);
    total += f.size_bytes;
  }
  const double seconds = frames / kFps;
  return static_cast<double>(total) * 8.0 / seconds;
}

TEST(Encoder, TracksTargetBitrate) {
  auto enc = make_encoder();
  enc.set_target_bitrate(8e6);
  const double realized = realized_bitrate(enc, 900);
  EXPECT_NEAR(realized, 8e6, 0.8e6);
}

TEST(Encoder, TracksHighTarget) {
  auto enc = make_encoder(2);
  enc.set_target_bitrate(25e6);
  EXPECT_NEAR(realized_bitrate(enc, 900), 25e6, 2.5e6);
}

TEST(Encoder, TargetClampedToPaperRange) {
  auto enc = make_encoder();
  enc.set_target_bitrate(100e6);
  EXPECT_DOUBLE_EQ(enc.target_bitrate(), 25e6);
  enc.set_target_bitrate(0.1e6);
  EXPECT_DOUBLE_EQ(enc.target_bitrate(), 2e6);
}

TEST(Encoder, FirstFrameIsKeyframe) {
  auto enc = make_encoder();
  const auto f = enc.encode(0, TimePoint::origin(), 1.0, false);
  EXPECT_TRUE(f.keyframe);
}

TEST(Encoder, GopStructureRespected) {
  EncoderConfig cfg;
  cfg.gop_frames = 30;
  EncoderModel enc{cfg, sim::Rng{3}};
  enc.set_target_bitrate(8e6);
  int keyframes = 0;
  for (int i = 0; i < 300; ++i) {
    if (enc.encode(i, TimePoint::from_us(i * 33'333), 1.0, false).keyframe) {
      ++keyframes;
    }
  }
  EXPECT_EQ(keyframes, 10);
}

TEST(Encoder, SceneCutForcesKeyframe) {
  auto enc = make_encoder();
  enc.encode(0, TimePoint::origin(), 1.0, false);
  const auto f = enc.encode(1, TimePoint::from_us(33'333), 1.0, true);
  EXPECT_TRUE(f.keyframe);
}

TEST(Encoder, KeyframesLargerThanPFrames) {
  auto enc = make_encoder(4);
  enc.set_target_bitrate(8e6);
  std::size_t key_total = 0, p_total = 0;
  int keys = 0, ps = 0;
  for (int i = 0; i < 600; ++i) {
    const auto f = enc.encode(i, TimePoint::from_us(i * 33'333), 1.0, false);
    if (f.keyframe) {
      key_total += f.size_bytes;
      ++keys;
    } else {
      p_total += f.size_bytes;
      ++ps;
    }
  }
  ASSERT_GT(keys, 0);
  ASSERT_GT(ps, 0);
  EXPECT_GT(static_cast<double>(key_total) / keys,
            1.5 * static_cast<double>(p_total) / ps);
}

TEST(Encoder, ComplexityScalesSize) {
  auto enc_lo = make_encoder(5);
  auto enc_hi = make_encoder(5);
  enc_lo.set_target_bitrate(8e6);
  enc_hi.set_target_bitrate(8e6);
  // Rate control claws back complexity overshoot over time, so compare the
  // immediate (first P-frame) response.
  enc_lo.encode(0, TimePoint::origin(), 1.0, false);
  enc_hi.encode(0, TimePoint::origin(), 1.0, false);
  const auto lo = enc_lo.encode(1, TimePoint::from_us(33'333), 0.6, false);
  const auto hi = enc_hi.encode(1, TimePoint::from_us(33'333), 1.6, false);
  EXPECT_GT(hi.size_bytes, lo.size_bytes);
}

TEST(Encoder, EncodeLatencyBoundedAndPositive) {
  auto enc = make_encoder(6);
  for (int i = 0; i < 300; ++i) {
    const auto f = enc.encode(i, TimePoint::from_us(i * 33'333), 1.0, false);
    const auto latency = f.encode_time - f.capture_time;
    EXPECT_GT(latency, Duration::zero());
    EXPECT_LT(latency, Duration::millis(40));
  }
}

TEST(Encoder, MetadataPropagated) {
  auto enc = make_encoder();
  enc.set_target_bitrate(10e6);
  const auto f = enc.encode(9, TimePoint::from_us(12345), 1.3, false);
  EXPECT_EQ(f.id, 9u);
  EXPECT_EQ(f.capture_time, TimePoint::from_us(12345));
  EXPECT_DOUBLE_EQ(f.encoded_bitrate_bps, 10e6);
  EXPECT_DOUBLE_EQ(f.complexity, 1.3);
}

TEST(Encoder, RateChangeAppliesToSubsequentFrames) {
  auto enc = make_encoder(7);
  enc.set_target_bitrate(25e6);
  realized_bitrate(enc, 300);
  enc.set_target_bitrate(2e6);
  // After the change, frames shrink to match the new target.
  const double realized = realized_bitrate(enc, 300);
  EXPECT_LT(realized, 4e6);
}

TEST(Encoder, NoZeroSizeFrames) {
  auto enc = make_encoder(8);
  enc.set_target_bitrate(2e6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(enc.encode(i, TimePoint::from_us(i * 33'333), 0.55, false).size_bytes,
              0u);
  }
}

}  // namespace
}  // namespace rpv::video
